"""Lockstep serving plane: bit-identity against the round-robin reference.

The vectorized scheduler (batched ``query_many`` per tick, array cache,
leader/follower plan sharing) is only allowed to change *where* pure
work happens, never what any client observes.  The matrix here pins
that: for every client count x contention mode x prefetcher x cache
backend, the lockstep report equals the round-robin report **bit for
bit** -- every per-query record, every per-client contention counter,
every shared-cache total, the tick count.  Timing claims (the perf
suite's 5x) are only meaningful on top of this equality.

Also pinned: N=1 lockstep reproduces ``SimulationEngine.run`` exactly
(extending the PR-5 invariant to the new scheduler), the plan-sharing
eligibility guard, and the ``to_aggregate`` round trip that carries the
contention counters into stored records (additive keys only).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import EWMAPrefetcher, StraightLinePrefetcher
from repro.core import ScoutPrefetcher
from repro.sim import ServingSimulator, SimulationConfig, SimulationEngine
from repro.sim.results import metrics_from_dict, metrics_to_dict
from repro.sim.serve import lockstep_from_env
from repro.workload import multiclient_sessions


def make_prefetcher(kind: str, tissue):
    if kind == "scout":
        return ScoutPrefetcher(tissue)
    if kind == "line":
        return StraightLinePrefetcher()
    return EWMAPrefetcher(lam=0.3)


def serve(tissue, index, *, n_clients, kind="ewma", mode="independent",
          stagger=0, cache_pages=None, n_queries=4, seed=5, hot_pool=4,
          **run_kwargs):
    clients = multiclient_sessions(
        tissue,
        n_clients=n_clients,
        seed=seed,
        n_queries=n_queries,
        volume=30_000.0,
        mode=mode,
        stagger=stagger,
        hot_pool=hot_pool,
    )
    config = SimulationConfig(cache_capacity_pages=cache_pages)
    prefetchers = [make_prefetcher(kind, tissue) for _ in clients]
    return ServingSimulator(index, config).run(clients, prefetchers, **run_kwargs)


def report_state(report) -> tuple:
    """Every observable bit of a ServeReport, comparably flattened."""
    return (
        [
            (
                client.client_id,
                client.shared_hits,
                client.shared_misses,
                client.cross_client_hits,
                client.evicted_misses,
                [dataclasses.asdict(r) for r in client.metrics.records],
            )
            for client in report.clients
        ],
        report.capacity_pages,
        report.cache_hits,
        report.cache_misses,
        report.cache_evictions,
        report.cache_insertions,
        report.n_ticks,
    )


class TestLockstepEquivalence:
    @pytest.mark.parametrize("n_clients", [1, 2, 8, 64])
    @pytest.mark.parametrize("mode", ["independent", "hotspot"])
    @pytest.mark.parametrize("kind", ["ewma", "scout"])
    def test_lockstep_bit_identical_to_round_robin(
        self, tissue, tissue_flat, n_clients, mode, kind
    ):
        n_queries = 2 if n_clients == 64 else 4
        reference = serve(
            tissue, tissue_flat, n_clients=n_clients, mode=mode, kind=kind,
            n_queries=n_queries, lockstep=False,
        )
        vectorized = serve(
            tissue, tissue_flat, n_clients=n_clients, mode=mode, kind=kind,
            n_queries=n_queries, lockstep=True,
        )
        assert report_state(vectorized) == report_state(reference)

    @pytest.mark.parametrize("cache_backend", ["dict", "array"])
    @pytest.mark.parametrize("stagger,cache_pages", [(0, None), (1, 24), (2, 12)])
    def test_backends_and_contention_knobs(
        self, tissue, tissue_flat, cache_backend, stagger, cache_pages
    ):
        """Both cache backends, staggered arrivals, tiny (evicting) caches."""
        reference = serve(
            tissue, tissue_flat, n_clients=4, mode="hotspot", stagger=stagger,
            cache_pages=cache_pages, n_queries=5, lockstep=False,
        )
        vectorized = serve(
            tissue, tissue_flat, n_clients=4, mode="hotspot", stagger=stagger,
            cache_pages=cache_pages, n_queries=5, lockstep=True,
            cache_backend=cache_backend,
        )
        assert report_state(vectorized) == report_state(reference)

    @pytest.mark.parametrize("kind", ["ewma", "line", "scout"])
    def test_single_client_lockstep_matches_engine_run(
        self, tissue, tissue_flat, kind
    ):
        """N=1 under the new scheduler still reproduces the classic loop."""
        clients = multiclient_sessions(
            tissue, n_clients=1, seed=5, n_queries=8, volume=30_000.0
        )
        report = ServingSimulator(tissue_flat).run(
            clients, [make_prefetcher(kind, tissue)], lockstep=True
        )
        reference = SimulationEngine(tissue_flat).run(
            clients[0].sequence, make_prefetcher(kind, tissue)
        )
        assert report.clients[0].metrics.records == reference.records
        assert report.to_aggregate().cache_hit_rate == reference.cache_hit_rate

    def test_share_plans_off_is_still_identical(self, tissue, tissue_flat):
        """Sharing is an optimization, not a semantic: off == auto == reference."""
        shared = serve(tissue, tissue_flat, n_clients=6, mode="hotspot",
                       hot_pool=2, lockstep=True)
        unshared = serve(tissue, tissue_flat, n_clients=6, mode="hotspot",
                         hot_pool=2, lockstep=True, share_plans=False)
        reference = serve(tissue, tissue_flat, n_clients=6, mode="hotspot",
                          hot_pool=2, lockstep=False)
        assert report_state(shared) == report_state(reference)
        assert report_state(unshared) == report_state(reference)


class TestPlanSharing:
    def test_followers_actually_replay_the_leader(self, tissue, tissue_flat):
        """Plan sharing must engage (else the equivalence tests are vacuous).

        Followers of a shared hot sequence skip ``observe()`` entirely,
        so their prefetcher history stays empty -- observable proof the
        leader's bundle, not a recomputation, served them.
        """
        clients = multiclient_sessions(
            tissue, n_clients=4, seed=5, n_queries=4, volume=30_000.0,
            mode="hotspot", hot_pool=1,
        )
        prefetchers = [EWMAPrefetcher(lam=0.3) for _ in clients]
        ServingSimulator(tissue_flat).run(clients, prefetchers, lockstep=True)
        histories = [len(p._centers) for p in prefetchers]
        assert histories[0] == 4  # the leader observed every query
        assert histories[1:] == [0, 0, 0]  # followers replayed, never observed

    def test_heterogeneous_fleet_disables_sharing(self, tissue, tissue_flat):
        """Mixed prefetcher configs must not share plans -- and stay exact."""
        clients = multiclient_sessions(
            tissue, n_clients=3, seed=5, n_queries=4, volume=30_000.0,
            mode="hotspot", hot_pool=1,
        )

        def fleet():
            return [EWMAPrefetcher(lam=0.3), EWMAPrefetcher(lam=0.7),
                    StraightLinePrefetcher()]

        reference = ServingSimulator(tissue_flat).run(clients, fleet(), lockstep=False)
        vectorized = ServingSimulator(tissue_flat).run(clients, fleet(), lockstep=True)
        assert report_state(vectorized) == report_state(reference)

    def test_share_plans_true_requires_eligible_fleet(self, tissue, tissue_flat):
        clients = multiclient_sessions(
            tissue, n_clients=2, seed=5, n_queries=2, volume=30_000.0
        )
        with pytest.raises(ValueError, match="position-only"):
            ServingSimulator(tissue_flat).run(
                clients,
                [EWMAPrefetcher(lam=0.3), ScoutPrefetcher(tissue)],
                lockstep=True,
                share_plans=True,
            )

    def test_share_plans_needs_lockstep(self, tissue, tissue_flat):
        clients = multiclient_sessions(
            tissue, n_clients=2, seed=5, n_queries=2, volume=30_000.0
        )
        with pytest.raises(ValueError, match="lockstep"):
            ServingSimulator(tissue_flat).run(
                clients,
                [EWMAPrefetcher(lam=0.3) for _ in clients],
                lockstep=False,
                share_plans=True,
            )


class TestEnvToggle:
    def test_lockstep_env_parsing(self, monkeypatch):
        for value, expected in [("1", True), ("true", True), ("ON", True),
                                ("0", False), ("", False), ("off", False)]:
            monkeypatch.setenv("REPRO_SERVE_LOCKSTEP", value)
            assert lockstep_from_env() is expected
        monkeypatch.delenv("REPRO_SERVE_LOCKSTEP")
        assert lockstep_from_env() is False


class TestAggregateCarryThrough:
    """Satellite fix: ``to_aggregate`` must not drop contention counters."""

    def test_to_aggregate_carries_contention_counters(self, tissue, tissue_flat):
        report = serve(
            tissue, tissue_flat, n_clients=4, kind="scout", mode="hotspot",
            hot_pool=1, stagger=1, n_queries=8, lockstep=False,
        )
        assert report.cross_client_hits > 0  # the interesting case
        pooled = report.to_aggregate()
        assert pooled.cross_client_hits == report.cross_client_hits
        assert pooled.evicted_misses == report.evicted_misses

    def test_serving_metrics_round_trip_through_store_schema(
        self, tissue, tissue_flat
    ):
        report = serve(tissue, tissue_flat, n_clients=2, n_queries=3,
                       lockstep=False)
        pooled = report.to_aggregate()
        data = metrics_to_dict(pooled)
        assert data["cross_client_hits"] == report.cross_client_hits
        assert data["evicted_misses"] == report.evicted_misses
        assert metrics_from_dict(data) == pooled

    def test_single_client_records_stay_byte_identical(self, tissue, tissue_flat):
        """Non-serving aggregates persist without the additive keys."""
        from repro.sim import run_experiment
        from repro.workload import generate_sequences

        sequences = generate_sequences(tissue, 2, 5, n_queries=3, volume=30_000.0)
        outcome = run_experiment(tissue_flat, sequences, EWMAPrefetcher(lam=0.3))
        data = metrics_to_dict(outcome.metrics)
        assert "cross_client_hits" not in data
        assert "evicted_misses" not in data
        assert metrics_from_dict(data) == dataclasses.replace(
            outcome.metrics, speedup=outcome.metrics.speedup
        )
