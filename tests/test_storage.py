"""Storage layer: page table, disk cost model, LRU prefetch cache."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.storage import DiskModel, DiskParameters, PageTable, PrefetchCache


class TestPageTable:
    def table(self):
        return PageTable([np.array([0, 1, 2]), np.array([3, 4]), np.array([5])])

    def test_sizes(self):
        table = self.table()
        assert table.n_pages == 3
        assert table.n_objects == 6
        assert table.page_size(0) == 3 and table.page_size(2) == 1

    def test_lookups_both_directions(self):
        table = self.table()
        assert table.page_of_object(4) == 1
        assert list(table.objects_of_page(1)) == [3, 4]

    def test_pages_of_objects_deduplicates(self):
        table = self.table()
        assert list(table.pages_of_objects([0, 1, 5])) == [0, 2]

    def test_page_ids_of_objects_preserves_order(self):
        table = self.table()
        assert list(table.page_ids_of_objects([5, 0, 3])) == [2, 0, 1]

    def test_empty_lookup(self):
        assert len(self.table().pages_of_objects([])) == 0

    def test_rejects_duplicate_assignment(self):
        with pytest.raises(ValueError):
            PageTable([np.array([0, 1]), np.array([1, 2])])

    def test_unassigned_object_raises(self):
        table = PageTable([np.array([0, 2])])
        with pytest.raises(KeyError):
            table.page_of_object(1)


class TestDiskModel:
    def test_empty_read_is_free(self):
        disk = DiskModel()
        assert disk.read_pages([]) == 0.0

    def test_each_page_pays_positioning_by_default(self):
        params = DiskParameters()
        disk = DiskModel(params)
        t1 = disk.read_pages([0])
        t3 = DiskModel(params).read_pages([10, 11, 12])
        assert t3 == pytest.approx(3 * t1)

    def test_sequential_discount_mode(self):
        params = DiskParameters(sequential_discount=True)
        contiguous = DiskModel(params).read_pages([5, 6, 7, 8])
        scattered = DiskModel(params).read_pages([5, 100, 200, 300])
        assert contiguous < scattered

    def test_sequential_discount_carries_head_position(self):
        disk = DiskModel(DiskParameters(sequential_discount=True))
        disk.read_pages([9])
        follow = disk.read_pages([10])
        assert follow == pytest.approx(disk.params.transfer_s_per_page)

    def test_duplicates_read_once(self):
        disk = DiskModel()
        t = disk.read_pages([3, 3, 3])
        assert disk.stats.pages_read == 1
        assert t == pytest.approx(DiskModel().read_pages([3]))

    def test_cost_if_cold_does_not_charge(self):
        disk = DiskModel()
        cost = disk.cost_if_cold([1, 2, 3])
        assert cost > 0
        assert disk.stats.pages_read == 0

    def test_cost_if_cold_matches_actual_cold_read(self):
        params = DiskParameters()
        pages = [4, 9, 17]
        assert DiskModel(params).cost_if_cold(pages) == pytest.approx(
            DiskModel(params).read_pages(pages)
        )

    def test_striping_divides_positioning(self):
        slow = DiskModel(DiskParameters(stripe_ways=1)).read_pages([1, 5, 9])
        fast = DiskModel(DiskParameters(stripe_ways=4)).read_pages([1, 5, 9])
        assert slow > fast

    def test_estimate_read_time_monotone(self):
        disk = DiskModel()
        assert disk.estimate_read_time(10) < disk.estimate_read_time(100)
        assert disk.estimate_read_time(0) == 0.0

    def test_estimate_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            DiskModel().estimate_read_time(5, contiguous_fraction=1.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters(seek_s=-1.0)
        with pytest.raises(ValueError):
            DiskParameters(transfer_mb_per_s=0.0)
        with pytest.raises(ValueError):
            DiskParameters(stripe_ways=0)

    def test_stats_accumulate(self):
        disk = DiskModel()
        disk.read_pages([1, 2])
        disk.read_pages([7])
        assert disk.stats.pages_read == 3
        assert disk.stats.seconds_busy > 0
        disk.reset_stats()
        assert disk.stats.pages_read == 0


class TestPrefetchCache:
    def test_miss_then_hit(self):
        cache = PrefetchCache(4)
        assert not cache.touch(1)
        cache.insert(1)
        assert cache.touch(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PrefetchCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.touch(1)  # 2 becomes least recently used
        cache.insert(3)
        assert 1 in cache and 3 in cache and 2 not in cache
        assert cache.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = PrefetchCache(3)
        for page in range(10):
            cache.insert(page)
            assert len(cache) <= 3

    def test_zero_capacity_accepts_nothing(self):
        cache = PrefetchCache(0)
        cache.insert(1)
        assert len(cache) == 0 and 1 not in cache

    def test_reinsert_refreshes_without_growth(self):
        cache = PrefetchCache(4)
        cache.insert(1)
        cache.insert(1)
        assert len(cache) == 1

    def test_clear(self):
        cache = PrefetchCache(4)
        cache.insert_many([1, 2, 3])
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = PrefetchCache(4)
        cache.insert(1)
        cache.touch(1)
        cache.touch(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_without_accesses(self):
        assert PrefetchCache(4).hit_rate == 0.0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            PrefetchCache(-1)

    @given(st.lists(st.tuples(st.sampled_from(["insert", "touch"]), st.integers(0, 20))))
    def test_model_based_lru(self, operations):
        """The cache behaves exactly like an ordered-dict reference model."""
        capacity = 4
        cache = PrefetchCache(capacity)
        model: list[int] = []  # most recent last
        for op, page in operations:
            if op == "insert":
                cache.insert(page)
                if page in model:
                    model.remove(page)
                    model.append(page)
                else:
                    model.append(page)
                    if len(model) > capacity:
                        model.pop(0)
            else:
                hit = cache.touch(page)
                assert hit == (page in model)
                if hit:
                    model.remove(page)
                    model.append(page)
            assert set(cache.cached_pages()) == set(model)
            assert cache.cached_pages() == model
