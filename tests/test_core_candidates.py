"""Iterative candidate pruning (§4.3) on hand-built scenarios."""

import numpy as np
import pytest

from repro.core import CandidateTracker, ScoutConfig
from repro.core.exits import estimate_gap, split_entries_exits
from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.geometry import AABB
from repro.graph import SpatialGraph
from repro.graph.traversal import Crossing, region_crossings


def multi_chain_dataset(chains: list[np.ndarray]) -> Dataset:
    """Several disjoint polyline chains; object ids are consecutive."""
    p0, p1, branch = [], [], []
    for chain_id, points in enumerate(chains):
        for a, b in zip(points[:-1], points[1:]):
            p0.append(a)
            p1.append(b)
            branch.append(chain_id)
    n = len(p0)
    nav = NavigationGraph(
        np.array([[0.0, 0, 0], [1.0, 0, 0]]),
        [NavEdge(0, 1, Polyline(np.array([[0.0, 0, 0], [1.0, 0, 0]])))],
    )
    return Dataset(
        name="chains",
        p0=np.array(p0),
        p1=np.array(p1),
        radius=np.zeros(n),
        structure_id=np.array(branch, dtype=np.int64),
        branch_id=np.array(branch, dtype=np.int64),
        nav=nav,
    )


def graph_of_chains(dataset: Dataset) -> SpatialGraph:
    graph = SpatialGraph(range(dataset.n_objects))
    for a in range(dataset.n_objects - 1):
        if dataset.branch_id[a] == dataset.branch_id[a + 1]:
            graph.add_edge(a, a + 1)
    return graph


def line_chain(y: float, x0: float, x1: float, step: float = 2.0) -> np.ndarray:
    xs = np.arange(x0, x1 + step / 2, step)
    return np.array([[x, y, 5.0] for x in xs])


class TestSplitEntriesExits:
    def test_without_movement_everything_is_exit(self):
        crossings = [Crossing(0, np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))]
        entries, exits = split_entries_exits(crossings, np.zeros(3), None)
        assert entries == [] and len(exits) == 1

    def test_front_back_classification(self):
        center = np.array([5.0, 5, 5])
        movement = np.array([1.0, 0, 0])
        front = Crossing(0, np.array([10.0, 5, 5]), np.array([1.0, 0, 0]))
        back = Crossing(1, np.array([0.0, 5, 5]), np.array([-1.0, 0, 0]))
        entries, exits = split_entries_exits([front, back], center, movement)
        assert exits == [front] and entries == [back]


class TestEstimateGap:
    def test_no_history(self):
        assert estimate_gap([], 10.0) == 0.0
        assert estimate_gap([np.zeros(3)], 10.0) == 0.0

    def test_adjacent_queries_no_gap(self):
        centers = [np.zeros(3), np.array([10.0, 0, 0])]
        assert estimate_gap(centers, 10.0) == pytest.approx(0.0)

    def test_positive_gap(self):
        centers = [np.zeros(3), np.array([17.0, 0, 0])]
        assert estimate_gap(centers, 10.0) == pytest.approx(7.0)

    def test_overlapping_queries_clamp_to_zero(self):
        centers = [np.zeros(3), np.array([5.0, 0, 0])]
        assert estimate_gap(centers, 10.0) == 0.0


class TestPruning:
    def region(self, x0: float) -> AABB:
        return AABB([x0, 0, 0], [x0 + 10, 10, 10])

    def test_first_query_all_exiting_structures(self):
        # Two chains crossing the region, one fully inside.
        ds = multi_chain_dataset(
            [line_chain(2.0, -4, 24), line_chain(7.0, -4, 24), line_chain(5.0, 3, 7)]
        )
        graph = graph_of_chains(ds)
        tracker = CandidateTracker()
        tracks = tracker.update(ds, graph, self.region(0.0), movement=None)
        assert len(tracks) == 2  # interior chain has no exits

    def test_pruning_drops_diverging_structures(self):
        # Chain A continues along +x; chain B exists only in query 1.
        chain_a = line_chain(2.0, -4, 40)
        chain_b = line_chain(7.0, -4, 14)
        ds = multi_chain_dataset([chain_a, chain_b])
        tracker = CandidateTracker()

        region1 = self.region(0.0)
        in1 = np.flatnonzero(
            np.all((ds.obj_lo <= region1.hi) & (ds.obj_hi >= region1.lo), axis=1)
        )
        graph1 = graph_of_chains(ds).subgraph(in1)
        tracker.update(ds, graph1, region1, movement=None)
        assert len(tracker.tracks) == 2

        region2 = self.region(10.0)
        in2 = np.flatnonzero(
            np.all((ds.obj_lo <= region2.hi) & (ds.obj_hi >= region2.lo), axis=1)
        )
        graph2 = graph_of_chains(ds).subgraph(in2)
        tracks = tracker.update(ds, graph2, region2, movement=np.array([10.0, 0, 0]))
        # Chain B ends inside query 2 (no exit) -> only chain A remains.
        assert len(tracks) == 1
        remaining_branches = {
            int(ds.branch_id[obj]) for t in tracks for obj in t.objects
        }
        assert remaining_branches == {0}

    def test_reset_when_user_jumps(self):
        # Chain B is far away along x AND laterally offset by more than
        # the matching tolerance (0.6 * side = 6), so it cannot be a
        # continuation of chain A's exit ray.
        chain_a = line_chain(2.0, -4, 14)
        chain_b = line_chain(9.5, 96, 124)
        ds = multi_chain_dataset([chain_a, chain_b])
        tracker = CandidateTracker()

        region1 = self.region(0.0)
        in1 = np.flatnonzero(
            np.all((ds.obj_lo <= region1.hi) & (ds.obj_hi >= region1.lo), axis=1)
        )
        tracker.update(ds, graph_of_chains(ds).subgraph(in1), region1, movement=None)

        region2 = self.region(100.0)  # far away: nothing continues
        in2 = np.flatnonzero(
            np.all((ds.obj_lo <= region2.hi) & (ds.obj_hi >= region2.lo), axis=1)
        )
        tracks = tracker.update(
            ds, graph_of_chains(ds).subgraph(in2), region2, movement=np.array([100.0, 0, 0])
        )
        assert tracker.resets == 1
        assert len(tracks) >= 1  # re-seeded from the new query's structures

    def test_candidate_sizes_recorded(self):
        ds = multi_chain_dataset([line_chain(2.0, -4, 24)])
        tracker = CandidateTracker()
        tracker.update(ds, graph_of_chains(ds), self.region(0.0), movement=None)
        assert tracker.candidate_sizes == [1]

    def test_reset_clears_state(self):
        ds = multi_chain_dataset([line_chain(2.0, -4, 24)])
        tracker = CandidateTracker()
        tracker.update(ds, graph_of_chains(ds), self.region(0.0), movement=None)
        tracker.reset()
        assert tracker.tracks == [] and tracker.candidate_sizes == []

    def test_object_overlap_matching(self):
        """With adjacent queries the same chain matches via shared objects."""
        chain = line_chain(5.0, -4, 40)
        ds = multi_chain_dataset([chain])
        tracker = CandidateTracker()
        region1 = self.region(0.0)
        in1 = np.flatnonzero(
            np.all((ds.obj_lo <= region1.hi) & (ds.obj_hi >= region1.lo), axis=1)
        )
        tracker.update(ds, graph_of_chains(ds).subgraph(in1), region1, None)
        region2 = self.region(10.0)
        in2 = np.flatnonzero(
            np.all((ds.obj_lo <= region2.hi) & (ds.obj_hi >= region2.lo), axis=1)
        )
        tracks = tracker.update(
            ds, graph_of_chains(ds).subgraph(in2), region2, np.array([10.0, 0, 0])
        )
        assert len(tracks) == 1 and tracker.resets == 0

    def test_proximity_matching_across_gap(self):
        """With a gap (no shared objects) matching works via extrapolation."""
        chain = line_chain(5.0, -4, 60)
        ds = multi_chain_dataset([chain])
        tracker = CandidateTracker(ScoutConfig(match_distance_factor=0.6))
        region1 = self.region(0.0)
        in1 = np.flatnonzero(
            np.all((ds.obj_lo <= region1.hi) & (ds.obj_hi >= region1.lo), axis=1)
        )
        tracker.update(ds, graph_of_chains(ds).subgraph(in1), region1, None)
        region2 = self.region(25.0)  # 15-unit gap
        in2 = np.flatnonzero(
            np.all((ds.obj_lo <= region2.hi) & (ds.obj_hi >= region2.lo), axis=1)
        )
        # Objects in region2 do not overlap region1's object set.
        assert not (set(in1.tolist()) & set(in2.tolist()))
        tracks = tracker.update(
            ds, graph_of_chains(ds).subgraph(in2), region2, np.array([25.0, 0, 0])
        )
        assert len(tracks) == 1 and tracker.resets == 0
