"""Serving cells through the declarative sweep pipeline.

A serving cell is an ordinary :class:`CellSpec` plus a ``serve``
mapping; these tests pin the spec round-trip (including the
key-stability guarantee for pre-existing non-serving cells), the
routing in :func:`run_cell`, and the ``clients_matrix`` grid builder.
"""

from __future__ import annotations

import pytest

from repro.sim import CellSpec, ParallelRunner, ResultStore, ServingSimulator, run_cell
from repro.sim.runner import (
    DatasetSpec,
    IndexSpec,
    PrefetcherSpec,
    WorkloadSpec,
    prepare_serving_cell,
    run_serving_cell,
)
from repro.workload.sweeps import clients_matrix, serve_cache_label, serve_clients_of


def serving_spec(n_clients=2, serve_extra=(), sim=()):
    return CellSpec(
        dataset=DatasetSpec("neuron", {"n_neurons": 6, "seed": 7}),
        index=IndexSpec("flat", {"fanout": 16}),
        workload=WorkloadSpec(n_sequences=n_clients, n_queries=3, volume=30_000.0),
        prefetcher=PrefetcherSpec("ewma", {"lam": 0.3}),
        seed=21,
        sim=dict(sim),
        serve={"n_clients": n_clients, "mode": "independent", "stagger": 1, **dict(serve_extra)},
    )


class TestServeSpec:
    def test_roundtrips_through_dict(self):
        spec = serving_spec()
        assert CellSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["serve"]["n_clients"] == 2

    def test_non_serving_cells_keep_their_keys(self):
        """No ``serve`` key in legacy specs: stored results stay valid."""
        spec = serving_spec()
        plain = CellSpec(
            dataset=spec.dataset,
            index=spec.index,
            workload=spec.workload,
            prefetcher=spec.prefetcher,
            seed=spec.seed,
        )
        assert "serve" not in plain.to_dict()
        assert plain.key() != spec.key()
        assert CellSpec.from_dict(plain.to_dict()) == plain

    def test_unknown_serve_key_rejected(self):
        with pytest.raises(ValueError, match="unknown serve key"):
            prepare_serving_cell(serving_spec(serve_extra={"warp": 9}))

    def test_missing_n_clients_rejected(self):
        spec = serving_spec()
        broken = CellSpec.from_dict(
            {**spec.to_dict(), "serve": {"mode": "independent"}}
        )
        with pytest.raises(ValueError, match="n_clients"):
            prepare_serving_cell(broken)

    def test_inconsistent_n_sequences_rejected(self):
        """n_sequences must mirror the client count, not silently fork keys."""
        spec = serving_spec()
        skewed = CellSpec.from_dict(
            {**spec.to_dict(), "workload": {**spec.workload.to_dict(), "n_sequences": 5}}
        )
        with pytest.raises(ValueError, match="one session per client"):
            prepare_serving_cell(skewed)

    def test_hot_pool_must_be_positive(self):
        with pytest.raises(ValueError, match="hot_pool"):
            prepare_serving_cell(
                serving_spec(serve_extra={"mode": "hotspot", "hot_pool": 0})
            )


class TestServeCellExecution:
    def test_run_cell_routes_serving_specs(self):
        spec = serving_spec()
        result = run_cell(spec)
        assert result.ok
        assert result.metrics.n_sequences == 2
        assert len(result.metrics.per_sequence_hit_rates) == 2

        # The persisted aggregate equals a direct ServingSimulator run.
        index, clients, prefetchers, config = prepare_serving_cell(spec)
        report = ServingSimulator(index, config).run(clients, prefetchers)
        assert result.metrics == report.to_aggregate()

    def test_run_serving_cell_returns_contention_report(self):
        result, report = run_serving_cell(serving_spec())
        assert result.metrics == report.to_aggregate()
        assert report.n_clients == 2
        assert report.cache_hits >= 0

    def test_sim_overrides_shrink_the_shared_cache(self):
        small = run_serving_cell(serving_spec(sim={"cache_capacity_pages": 16}))[1]
        assert small.capacity_pages == 16

    def test_pooled_and_serial_serving_cells_agree(self, tmp_path):
        cells = clients_matrix(
            clients=(1, 2), cache_pages=(None,), n_neurons=6, n_queries=3,
        )
        serial = ParallelRunner(jobs=1).run(cells, resume=False)
        store = ResultStore(tmp_path / "serve.jsonl", async_writes=True)
        with store:
            pooled = ParallelRunner(jobs=2, store=store).run(cells, resume=False)
        for a, b in zip(serial.results, pooled.results):
            assert a.key == b.key
            assert a.metrics == b.metrics


class TestLockstepPlumbing:
    def test_lockstep_cell_metrics_identical(self):
        """run_serving_cell is scheduler-agnostic: same cell, same metrics."""
        spec = serving_spec()
        reference = run_serving_cell(spec, lockstep=False)[0]
        vectorized = run_serving_cell(spec, lockstep=True)[0]
        assert vectorized.key == reference.key
        assert vectorized.metrics == reference.metrics

    def test_env_toggle_drives_the_scheduler(self, monkeypatch):
        """REPRO_SERVE_LOCKSTEP reaches run_serving_cell (and so workers)."""
        spec = serving_spec()
        reference = run_serving_cell(spec)[0]
        monkeypatch.setenv("REPRO_SERVE_LOCKSTEP", "1")
        toggled = run_serving_cell(spec)[0]
        assert toggled.metrics == reference.metrics

    def test_serving_metrics_carry_contention_counters(self):
        """The persisted aggregate keeps cross_client_hits/evicted_misses."""
        result, report = run_serving_cell(serving_spec())
        assert result.metrics.cross_client_hits == report.cross_client_hits
        assert result.metrics.evicted_misses == report.evicted_misses


class TestClientsMatrix:
    def test_grid_shape_and_order(self):
        cells = clients_matrix(
            clients=(1, 2), cache_pages=(None, 32), n_neurons=6, n_queries=3
        )
        assert len(cells) == 2 * 2 * 2  # cache x prefetcher x clients
        labels = [serve_cache_label(c.to_dict()) for c in cells]
        assert labels == ["auto"] * 4 + ["32 pages"] * 4  # cache-size-major
        assert [serve_clients_of(c.to_dict()) for c in cells[:2]] == [1, 2]

    def test_cells_are_distinct_and_stable(self):
        cells = clients_matrix(n_neurons=6, n_queries=3)
        keys = [c.key() for c in cells]
        assert len(set(keys)) == len(keys)
        assert keys == [c.key() for c in clients_matrix(n_neurons=6, n_queries=3)]

    def test_workload_mirrors_client_count(self):
        for cell in clients_matrix(clients=(4,), cache_pages=(None,), n_neurons=6):
            assert cell.workload.n_sequences == 4
            assert cell.serve["n_clients"] == 4

    def test_rejects_bad_client_counts(self):
        with pytest.raises(ValueError, match="clients"):
            clients_matrix(clients=())
        with pytest.raises(ValueError, match="clients"):
            clients_matrix(clients=(0,))
