"""Data generators: morphology, ground truth, navigation graph."""

import math

import numpy as np
import pytest

from repro.datagen import (
    BranchingConfig,
    Dataset,
    grow_tree,
    make_arterial_tree,
    make_lung_airways,
    make_neuron_tissue,
    make_road_network,
)
from repro.datagen.dataset import Polyline
from repro.index import FlatIndex


class TestBranchingConfig:
    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            BranchingConfig(steps_per_branch=(5, 2))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BranchingConfig(bifurcation_probability=1.5)
        with pytest.raises(ValueError):
            BranchingConfig(kink_probability=-0.1)


class TestGrowTree:
    def config(self):
        return BranchingConfig(n_stems=1, max_depth=2, steps_per_branch=(3, 5), step_length=2.0)

    def test_object_counts_match_branches(self, rng):
        tree = grow_tree(rng, np.zeros(3), np.array([0, 0, 1.0]), self.config())
        # 1 stem bifurcating twice: 1 + 2 + 4 = 7 branches of 3-5 steps.
        n_branches = len(np.unique(tree.branch_of_object))
        assert n_branches == 7
        assert 7 * 3 <= len(tree.p0) <= 7 * 5

    def test_branch_id_offset(self, rng):
        tree = grow_tree(
            rng, np.zeros(3), np.array([0, 0, 1.0]), self.config(), branch_id_offset=100
        )
        assert tree.branch_of_object.min() >= 100

    def test_segments_are_connected_chains(self, rng):
        tree = grow_tree(rng, np.zeros(3), np.array([0, 0, 1.0]), self.config())
        for branch in np.unique(tree.branch_of_object):
            members = np.flatnonzero(tree.branch_of_object == branch)
            for a, b in zip(members[:-1], members[1:]):
                assert np.allclose(tree.p1[a], tree.p0[b])

    def test_segment_lengths_equal_step(self, rng):
        tree = grow_tree(rng, np.zeros(3), np.array([0, 0, 1.0]), self.config())
        lengths = np.linalg.norm(tree.p1 - tree.p0, axis=1)
        assert np.allclose(lengths, 2.0)

    def test_nav_edges_match_branches(self, rng):
        tree = grow_tree(rng, np.zeros(3), np.array([0, 0, 1.0]), self.config())
        assert len(tree.nav_edges) == 7

    def test_kinks_increase_tortuosity(self):
        smooth_cfg = BranchingConfig(
            n_stems=1, max_depth=0, steps_per_branch=(200, 200), direction_jitter=0.0
        )
        kinked_cfg = BranchingConfig(
            n_stems=1, max_depth=0, steps_per_branch=(200, 200),
            direction_jitter=0.0, kink_probability=0.3, kink_angle=1.0,
        )
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        smooth = grow_tree(rng1, np.zeros(3), np.array([0, 0, 1.0]), smooth_cfg)
        kinked = grow_tree(rng2, np.zeros(3), np.array([0, 0, 1.0]), kinked_cfg)
        smooth_span = np.linalg.norm(smooth.p1[-1] - smooth.p0[0])
        kinked_span = np.linalg.norm(kinked.p1[-1] - kinked.p0[0])
        assert kinked_span < smooth_span


class TestNeuronTissue:
    def test_counts_and_ids(self, tissue):
        assert tissue.n_objects > 1000
        assert len(np.unique(tissue.structure_id)) == 12
        assert tissue.dims == 3

    def test_deterministic(self):
        a = make_neuron_tissue(n_neurons=3, seed=42)
        b = make_neuron_tissue(n_neurons=3, seed=42)
        assert np.array_equal(a.p0, b.p0)
        assert np.array_equal(a.branch_id, b.branch_id)

    def test_different_seeds_differ(self):
        a = make_neuron_tissue(n_neurons=3, seed=1)
        b = make_neuron_tissue(n_neurons=3, seed=2)
        assert not np.array_equal(a.p0, b.p0)

    def test_branch_ids_globally_unique(self, tissue):
        # Branches of different neurons never share an id.
        for branch in np.unique(tissue.branch_id)[:50]:
            owners = np.unique(tissue.structure_id[tissue.branch_id == branch])
            assert len(owners) == 1

    def test_rejects_zero_neurons(self):
        with pytest.raises(ValueError):
            make_neuron_tissue(n_neurons=0)

    def test_explicit_extent_honored(self):
        ds = make_neuron_tissue(n_neurons=3, seed=0, extent=100.0)
        # Somata confined to [0, 100]^3; fibers may extend beyond.
        assert ds.bounds.extent.max() < 100.0 + 2 * 600.0


class TestArterial:
    def test_single_tree(self, arterial):
        assert len(np.unique(arterial.structure_id)) == 1
        assert arterial.n_objects > 500

    def test_smoother_than_neurons(self, arterial, tissue):
        def mean_turn(ds, k=2000):
            deltas = ds.p1[:k] - ds.p0[:k]
            deltas /= np.linalg.norm(deltas, axis=1)[:, None]
            same_branch = ds.branch_id[1:k] == ds.branch_id[: k - 1]
            cos = np.sum(deltas[1:] * deltas[:-1], axis=1)[same_branch[: len(deltas) - 1]]
            return np.arccos(np.clip(cos, -1, 1)).mean()

        assert mean_turn(arterial) < mean_turn(tissue)


class TestLung:
    def test_mesh_has_explicit_adjacency(self, lung):
        assert lung.explicit_edges is not None
        assert len(lung.explicit_edges) > lung.n_objects  # ~3 neighbors per face

    def test_adjacency_ids_in_range(self, lung):
        assert lung.explicit_edges.min() >= 0
        assert lung.explicit_edges.max() < lung.n_objects

    def test_faces_near_centerline(self, lung):
        # Every face's representative segment lies within the tube radius
        # plus a step of the navigation polylines' bounding box.
        nav_points = np.vstack([e.polyline.points for e in lung.nav.edges])
        lo, hi = nav_points.min(axis=0) - 10, nav_points.max(axis=0) + 10
        assert np.all(lung.p0 >= lo) and np.all(lung.p0 <= hi)


class TestRoads:
    def test_planar(self, roads):
        assert roads.dims == 2
        assert np.allclose(roads.p0[:, 2], 0.0)
        assert np.allclose(roads.p1[:, 2], 0.0)

    def test_structures_are_roads(self, roads):
        assert len(np.unique(roads.structure_id)) > 20

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            make_road_network(grid_size=1)

    def test_rejects_bad_drop_probability(self):
        with pytest.raises(ValueError):
            make_road_network(drop_probability=1.0)


#: The Fig-17 cross-domain generators at unit-test size, by name.
#: (The neuron tissue already has its own determinism tests above.)
CROSS_DOMAIN_GENERATORS = {
    "arterial": lambda seed: make_arterial_tree(seed=seed, max_depth=3),
    "lung": lambda seed: make_lung_airways(seed=seed, max_depth=3),
    "roads": lambda seed: make_road_network(grid_size=6, seed=seed),
}


class TestCrossDomainGenerators:
    """Direct contracts of the lung/arterial/roads generators.

    Previously only exercised transitively (through benchmarks and the
    Fig-17 grid); the sweep engine keys cells by spec content hash, so
    per-seed determinism is load-bearing for resume correctness.
    """

    @pytest.mark.parametrize("name", sorted(CROSS_DOMAIN_GENERATORS))
    def test_deterministic_per_seed(self, name):
        build = CROSS_DOMAIN_GENERATORS[name]
        a, b = build(3), build(3)
        assert np.array_equal(a.p0, b.p0) and np.array_equal(a.p1, b.p1)
        assert np.array_equal(a.structure_id, b.structure_id)
        assert np.array_equal(a.branch_id, b.branch_id)
        if a.explicit_edges is not None:
            assert np.array_equal(a.explicit_edges, b.explicit_edges)

    @pytest.mark.parametrize("name", sorted(CROSS_DOMAIN_GENERATORS))
    def test_different_seeds_differ(self, name):
        build = CROSS_DOMAIN_GENERATORS[name]
        assert not np.array_equal(build(3).p0, build(4).p0)

    @pytest.mark.parametrize("name", sorted(CROSS_DOMAIN_GENERATORS))
    def test_extent_non_degenerate(self, name):
        dataset = CROSS_DOMAIN_GENERATORS[name](3)
        extent = dataset.bounds.extent
        active = extent[: dataset.dims]
        assert np.all(active > 1.0), active  # spans real space on every active axis
        assert np.all(np.isfinite(extent))
        assert dataset.density() > 0

    @pytest.mark.parametrize("name", sorted(CROSS_DOMAIN_GENERATORS))
    def test_page_count_sanity(self, name):
        dataset = CROSS_DOMAIN_GENERATORS[name](3)
        index = FlatIndex(dataset, fanout=16)
        # Pages hold at most `fanout` objects, and every object is paged.
        assert index.n_pages >= math.ceil(dataset.n_objects / 16)
        assert index.n_pages <= dataset.n_objects
        assert index.n_pages > 1  # big enough to exercise prefetching

    def test_max_depth_caps_tree_size(self):
        assert (
            make_arterial_tree(seed=1, max_depth=2).n_objects
            < make_arterial_tree(seed=1, max_depth=4).n_objects
        )
        assert (
            make_lung_airways(seed=1, max_depth=2).n_objects
            < make_lung_airways(seed=1, max_depth=4).n_objects
        )


class TestDatasetContainer:
    def test_bounds_contain_everything(self, tissue):
        assert np.all(tissue.obj_lo >= tissue.bounds.lo - 1e-9)
        assert np.all(tissue.obj_hi <= tissue.bounds.hi + 1e-9)

    def test_density_positive(self, tissue, roads):
        assert tissue.density() > 0
        assert roads.density() > 0

    def test_scaled_by_preserves_topology(self, tissue):
        scaled = tissue.scaled_by(2.0)
        assert scaled.n_objects == tissue.n_objects
        assert np.allclose(scaled.p0, tissue.p0 * 2.0)
        assert scaled.nav.n_edges == tissue.nav.n_edges

    def test_rescaled_to_density(self, tissue):
        target = tissue.density() * 8.0
        rescaled = tissue.rescaled_to_density(target)
        assert rescaled.density() == pytest.approx(target, rel=0.01)

    def test_scaled_rejects_nonpositive(self, tissue):
        with pytest.raises(ValueError):
            tissue.scaled_by(0.0)

    def test_size_bytes(self, tissue):
        assert tissue.size_bytes() == tissue.n_objects * 72


class TestNavigationGraph:
    def test_random_walk_length(self, tissue, rng):
        walk = tissue.nav.random_walk(rng, 300.0)
        assert walk.length >= 300.0

    def test_walk_points_lie_on_structures(self, tissue, rng):
        walk = tissue.nav.random_walk(rng, 200.0)
        # Walk points are polyline points of nav edges, which trace the
        # branch geometry: each sampled point must be near some object.
        sample = walk.points[:: max(1, len(walk.points) // 20)]
        for point in sample:
            distances = np.linalg.norm(tissue.centroids - point, axis=1)
            assert distances.min() < 20.0

    def test_walk_deterministic_given_rng(self, tissue):
        w1 = tissue.nav.random_walk(np.random.default_rng(5), 200.0)
        w2 = tissue.nav.random_walk(np.random.default_rng(5), 200.0)
        assert np.allclose(w1.points, w2.points)


class TestPolyline:
    def test_length(self):
        poly = Polyline(np.array([[0, 0, 0], [3, 4, 0], [3, 4, 5]], dtype=float))
        assert poly.length == pytest.approx(10.0)

    def test_point_at_interpolates(self):
        poly = Polyline(np.array([[0, 0, 0], [10, 0, 0]], dtype=float))
        assert np.allclose(poly.point_at(2.5), [2.5, 0, 0])

    def test_point_at_clamps(self):
        poly = Polyline(np.array([[0, 0, 0], [10, 0, 0]], dtype=float))
        assert np.allclose(poly.point_at(-5), [0, 0, 0])
        assert np.allclose(poly.point_at(50), [10, 0, 0])

    def test_tangent_unit(self):
        poly = Polyline(np.array([[0, 0, 0], [0, 2, 0], [0, 2, 2]], dtype=float))
        assert np.allclose(poly.tangent_at(1.0), [0, 1, 0])
        assert np.allclose(poly.tangent_at(3.0), [0, 0, 1])

    def test_reversed(self):
        poly = Polyline(np.array([[0, 0, 0], [1, 0, 0]], dtype=float))
        assert np.allclose(poly.reversed().points[0], [1, 0, 0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            Polyline(np.array([[0, 0, 0]], dtype=float))
