"""Workloads: guided sequences and the Figure-10 registry."""

import numpy as np
import pytest

from repro.workload import (
    MICROBENCHMARKS,
    generate_sequence,
    generate_sequences,
    microbenchmark,
    microbenchmark_names,
)


class TestGenerateSequence:
    def test_sequence_length(self, tissue, rng):
        seq = generate_sequence(tissue, rng, n_queries=10, volume=40_000.0)
        assert len(seq) == 10

    def test_query_volume(self, tissue, rng):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
        for query in seq.queries:
            assert query.bounds.volume == pytest.approx(40_000.0, rel=1e-6)

    def test_adjacent_spacing(self, tissue, rng):
        seq = generate_sequence(tissue, rng, n_queries=8, volume=40_000.0, gap=0.0)
        side = 40_000.0 ** (1 / 3)
        gaps = np.linalg.norm(np.diff(seq.centers, axis=0), axis=1)
        # Euclidean spacing equals one side (within the arc-step tolerance).
        assert np.all(gaps >= side * 0.95)
        assert np.all(gaps <= side * 1.2)

    def test_gap_spacing(self, tissue, rng):
        gap = 15.0
        seq = generate_sequence(tissue, rng, n_queries=8, volume=40_000.0, gap=gap)
        side = 40_000.0 ** (1 / 3)
        gaps = np.linalg.norm(np.diff(seq.centers, axis=0), axis=1)
        assert np.all(gaps >= (side + gap) * 0.95)

    def test_queries_follow_the_guiding_path(self, tissue, rng):
        seq = generate_sequence(tissue, rng, n_queries=8, volume=40_000.0)
        for query in seq.queries:
            assert query.bounds.contains_point(query.center)
            # The center lies on the guiding path by construction, hence
            # near some dataset structure.
            distances = np.linalg.norm(tissue.centroids - query.center, axis=1)
            assert distances.min() < 25.0

    def test_queries_nonempty_on_structure(self, tissue, tissue_rtree, rng):
        seq = generate_sequence(tissue, rng, n_queries=8, volume=40_000.0)
        non_empty = sum(
            1 for q in seq.queries if tissue_rtree.query(q.bounds).n_objects > 0
        )
        assert non_empty == len(seq.queries)

    def test_frustum_aspect(self, tissue, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=30_000.0, aspect="frustum")
        for query in seq.queries:
            assert query.frustum is not None
            assert query.frustum.volume == pytest.approx(30_000.0, rel=1e-6)
            assert query.bounds.contains_box(query.frustum.bounding_aabb())

    def test_rejects_unknown_aspect(self, tissue, rng):
        with pytest.raises(ValueError):
            generate_sequence(tissue, rng, n_queries=2, volume=100.0, aspect="sphere")

    def test_rejects_zero_queries(self, tissue, rng):
        with pytest.raises(ValueError):
            generate_sequence(tissue, rng, n_queries=0, volume=100.0)

    def test_rejects_nonpositive_volume(self, tissue, rng):
        with pytest.raises(ValueError):
            generate_sequence(tissue, rng, n_queries=2, volume=0.0)

    def test_2d_queries_span_z(self, roads, rng):
        seq = generate_sequence(roads, rng, n_queries=5, volume=900.0)
        for query in seq.queries:
            assert query.bounds.lo[2] <= 0.0 <= query.bounds.hi[2]
            side = 900.0 ** 0.5
            assert query.bounds.extent[0] == pytest.approx(side)


class TestGenerateSequences:
    def test_reproducible(self, tissue):
        a = generate_sequences(tissue, 3, seed=9, n_queries=5, volume=40_000.0)
        b = generate_sequences(tissue, 3, seed=9, n_queries=5, volume=40_000.0)
        for sa, sb in zip(a, b):
            assert np.allclose(sa.centers, sb.centers)

    def test_sequences_differ_from_each_other(self, tissue):
        seqs = generate_sequences(tissue, 3, seed=9, n_queries=5, volume=40_000.0)
        assert not np.allclose(seqs[0].centers, seqs[1].centers)


class TestMicrobenchmarkRegistry:
    def test_figure10_rows_present(self):
        assert len(MICROBENCHMARKS) == 7
        assert microbenchmark_names(with_gaps=True) == ["vis_gaps_high", "vis_gaps_low"]
        assert len(microbenchmark_names(with_gaps=False)) == 5

    def test_parameters_match_figure10(self):
        spec = microbenchmark("model_building")
        assert spec.n_queries == 35
        assert spec.volume == 20_000.0
        assert spec.window_ratio == 2.0
        assert spec.aspect == "cube"

        vis = microbenchmark("vis_high")
        assert vis.n_queries == 65
        assert vis.volume == 30_000.0
        assert vis.aspect == "frustum"

        gaps = microbenchmark("vis_gaps_high")
        assert gaps.gap == 25.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            microbenchmark("nope")

    def test_generate_applies_spec(self, tissue):
        spec = microbenchmark("adhoc_stat")
        seqs = spec.generate(tissue, n_sequences=2, seed=3)
        assert len(seqs) == 2
        assert all(len(s) == 25 for s in seqs)
        assert all(s.window_ratio == 0.8 for s in seqs)
