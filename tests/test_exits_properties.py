"""Property tests on exit classification and extrapolation geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.exits import estimate_gap, split_entries_exits
from repro.graph.traversal import Crossing

unit_coords = st.floats(-1.0, 1.0, allow_nan=False)
points = st.tuples(
    st.floats(-50, 50, allow_nan=False),
    st.floats(-50, 50, allow_nan=False),
    st.floats(-50, 50, allow_nan=False),
).map(np.array)


def crossing(point, direction) -> Crossing:
    direction = np.asarray(direction, dtype=float)
    norm = np.linalg.norm(direction)
    if norm == 0:
        direction = np.array([1.0, 0.0, 0.0])
    else:
        direction = direction / norm
    return Crossing(0, np.asarray(point, dtype=float), direction)


class TestSplitProperties:
    @given(st.lists(st.tuples(points, points), max_size=12))
    def test_partition_is_complete_and_disjoint(self, raw):
        crossings = [crossing(p, d) for p, d in raw]
        center = np.zeros(3)
        movement = np.array([1.0, 0.5, -0.25])
        entries, exits = split_entries_exits(crossings, center, movement)
        assert len(entries) + len(exits) == len(crossings)
        for c in crossings:
            in_entries = any(e is c for e in entries)
            in_exits = any(e is c for e in exits)
            assert in_entries != in_exits

    @given(points)
    def test_mirrored_movement_swaps_classification(self, movement_raw):
        movement = movement_raw + 1e-3  # avoid the zero vector
        center = np.zeros(3)
        c_front = crossing(movement * 2.0, movement)
        entries, exits = split_entries_exits([c_front], center, movement)
        assert exits == [c_front]
        entries2, exits2 = split_entries_exits([c_front], center, -movement)
        assert entries2 == [c_front]

    def test_zero_movement_treated_as_unknown(self):
        c = crossing([5.0, 0, 0], [1.0, 0, 0])
        entries, exits = split_entries_exits([c], np.zeros(3), np.zeros(3))
        assert exits == [c] and entries == []


class TestExtrapolationProperties:
    @given(points, points, st.floats(0.0, 100.0, allow_nan=False))
    def test_extrapolation_distance(self, point, direction_raw, distance):
        c = crossing(point, direction_raw + 1e-3)
        beyond = c.extrapolate(distance)
        assert np.linalg.norm(beyond - c.point) == pytest.approx(distance, abs=1e-6)

    @given(points, points)
    def test_zero_extrapolation_is_identity(self, point, direction_raw):
        c = crossing(point, direction_raw + 1e-3)
        assert np.allclose(c.extrapolate(0.0), c.point)


class TestGapEstimateProperties:
    @given(st.lists(points, min_size=2, max_size=8), st.floats(0.1, 50.0, allow_nan=False))
    def test_never_negative(self, centers, side):
        assert estimate_gap(list(centers), side) >= 0.0

    @given(points, st.floats(0.1, 20.0, allow_nan=False), st.floats(0.0, 30.0, allow_nan=False))
    def test_recovers_constructed_gap(self, start, side, gap):
        direction = np.array([1.0, 0.0, 0.0])
        centers = [start, start + direction * (side + gap)]
        assert estimate_gap(centers, side) == pytest.approx(gap, abs=1e-9)
