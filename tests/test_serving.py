"""Serving layer: QuerySession state machine + multi-client simulator.

Two load-bearing guarantees are pinned here:

* **single-client equivalence** -- the ``QuerySession`` refactor and
  ``ServingSimulator`` with one client are *bit-identical* to the
  classic ``SimulationEngine.run`` loop (the golden-metrics suite pins
  the same property against the frozen fixtures);
* **shared-cache accounting** -- under any interleaving (client count,
  stagger, contention mode, cache size), the per-client hit/miss
  counters partition the shared cache's own totals exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EWMAPrefetcher
from repro.core import ScoutPrefetcher
from repro.sim import (
    QuerySession,
    ServingSimulator,
    SimulationConfig,
    SimulationEngine,
)
from repro.workload import generate_sequences, multiclient_sessions
from repro.workload.multiclient import zipf_weights


def make_prefetcher(kind: str, tissue):
    if kind == "scout":
        return ScoutPrefetcher(tissue)
    return EWMAPrefetcher(lam=0.3)


def serve(tissue, index, *, n_clients, kind="ewma", mode="independent",
          stagger=0, cache_pages=None, n_queries=6, seed=5, hot_pool=2):
    clients = multiclient_sessions(
        tissue,
        n_clients=n_clients,
        seed=seed,
        n_queries=n_queries,
        volume=30_000.0,
        mode=mode,
        stagger=stagger,
        hot_pool=hot_pool,
    )
    config = SimulationConfig(cache_capacity_pages=cache_pages)
    prefetchers = [make_prefetcher(kind, tissue) for _ in clients]
    return ServingSimulator(index, config).run(clients, prefetchers)


class TestQuerySession:
    def test_phases_cycle_in_order(self, tissue, tissue_flat, rng):
        sequence = generate_sequences(tissue, 1, 5, n_queries=3, volume=30_000.0)[0]
        session = QuerySession(SimulationEngine(tissue_flat), sequence, EWMAPrefetcher())
        phases = []
        while not session.done:
            phases.append(session.step())
        assert phases == list(QuerySession.PHASES) * 3
        assert session.step() is None
        assert session.step_query() is None

    def test_step_query_resumes_mid_query(self, tissue, tissue_flat):
        sequence = generate_sequences(tissue, 1, 5, n_queries=2, volume=30_000.0)[0]
        engine = SimulationEngine(tissue_flat)
        session = QuerySession(engine, sequence, EWMAPrefetcher())
        assert session.step() == "serve"  # stop between phases...
        record = session.step_query()  # ...and resume to the query's end
        assert record is session.metrics.records[0]
        assert session.query_index == 1

        reference = engine.run(sequence, EWMAPrefetcher())
        session.step_query()
        assert session.metrics.records == reference.records

    @pytest.mark.parametrize("kind", ["ewma", "scout"])
    def test_session_matches_engine_run(self, tissue, tissue_flat, kind):
        sequence = generate_sequences(tissue, 1, 7, n_queries=6, volume=30_000.0)[0]
        engine = SimulationEngine(tissue_flat)
        via_session = QuerySession(engine, sequence, make_prefetcher(kind, tissue)).run()
        via_run = engine.run(sequence, make_prefetcher(kind, tissue))
        assert via_session.records == via_run.records


class TestSingleClientEquivalence:
    @pytest.mark.parametrize("kind", ["ewma", "scout"])
    def test_one_client_bit_identical_to_engine(self, tissue, tissue_flat, kind):
        """ServingSimulator(n_clients=1) reproduces SimulationEngine.run."""
        clients = multiclient_sessions(
            tissue, n_clients=1, seed=5, n_queries=8, volume=30_000.0
        )
        report = ServingSimulator(tissue_flat).run(
            clients, [make_prefetcher(kind, tissue)]
        )
        reference = SimulationEngine(tissue_flat).run(
            clients[0].sequence, make_prefetcher(kind, tissue)
        )
        assert report.clients[0].metrics.records == reference.records
        assert report.to_aggregate().cache_hit_rate == reference.cache_hit_rate
        # One client cannot cross-hit or be evicted by anyone else at
        # the default (auto) cache size.
        assert report.cross_client_hits == 0

    def test_independent_sessions_match_single_client_sequences(self, tissue):
        clients = multiclient_sessions(
            tissue, n_clients=3, seed=5, n_queries=4, volume=30_000.0
        )
        reference = generate_sequences(
            tissue, n_sequences=3, seed=5, n_queries=4, volume=30_000.0
        )
        for client, sequence in zip(clients, reference):
            assert [q.center.tolist() for q in client.sequence.queries] == [
                q.center.tolist() for q in sequence.queries
            ]


class TestSharedCacheAccounting:
    @settings(deadline=None, max_examples=20)
    @given(
        n_clients=st.integers(min_value=1, max_value=4),
        stagger=st.integers(min_value=0, max_value=3),
        cache_pages=st.one_of(st.none(), st.integers(min_value=8, max_value=64)),
        mode=st.sampled_from(["independent", "hotspot"]),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_client_touches_partition_cache_totals(
        self, tissue, tissue_flat, n_clients, stagger, cache_pages, mode, seed
    ):
        """Per-client hits+misses sum to the shared cache's counters."""
        report = serve(
            tissue,
            tissue_flat,
            n_clients=n_clients,
            mode=mode,
            stagger=stagger,
            cache_pages=cache_pages,
            n_queries=4,
            seed=seed,
        )
        assert sum(c.shared_hits for c in report.clients) == report.cache_hits
        assert sum(c.shared_misses for c in report.clients) == report.cache_misses
        for client in report.clients:
            records = client.metrics.records
            assert client.shared_hits == sum(r.pages_hit for r in records)
            assert client.shared_misses == sum(r.pages_missed for r in records)
            assert 0 <= client.cross_client_hits <= client.shared_hits
            assert 0 <= client.evicted_misses <= client.shared_misses

    def test_serving_run_is_deterministic(self, tissue, tissue_flat):
        a = serve(tissue, tissue_flat, n_clients=3, mode="hotspot", stagger=1)
        b = serve(tissue, tissue_flat, n_clients=3, mode="hotspot", stagger=1)
        assert a.to_aggregate() == b.to_aggregate()
        assert [c.cross_client_hits for c in a.clients] == [
            c.cross_client_hits for c in b.clients
        ]

    def test_hotspot_clients_share_prefetched_pages(self, tissue, tissue_flat):
        """Followers of a hot walk hit pages the leader prefetched."""
        report = serve(
            tissue, tissue_flat, n_clients=4, kind="scout", mode="hotspot",
            hot_pool=1, stagger=1, n_queries=8,
        )
        assert report.cross_client_hits > 0
        assert report.cross_client_hit_rate > 0.0

    def test_tiny_shared_cache_induces_eviction_misses(self, tissue, tissue_flat):
        report = serve(
            tissue, tissue_flat, n_clients=4, kind="scout", cache_pages=12,
            n_queries=8,
        )
        assert report.cache_evictions > 0
        assert report.evicted_misses > 0

    def test_report_shape(self, tissue, tissue_flat):
        report = serve(tissue, tissue_flat, n_clients=2, n_queries=3)
        assert report.n_clients == 2
        assert len(report.per_client_hit_rates) == 2
        aggregate = report.to_aggregate()
        assert aggregate.n_sequences == 2
        assert aggregate.per_sequence_hit_rates == report.per_client_hit_rates
        assert 0.0 <= report.aggregate_hit_rate <= 1.0


class TestServingValidation:
    def test_prefetcher_count_must_match_clients(self, tissue, tissue_flat):
        clients = multiclient_sessions(
            tissue, n_clients=2, seed=5, n_queries=2, volume=30_000.0
        )
        with pytest.raises(ValueError, match="each client needs its own"):
            ServingSimulator(tissue_flat).run(clients, [EWMAPrefetcher()])

    def test_empty_client_list_rejected(self, tissue_flat):
        with pytest.raises(ValueError, match="at least one client"):
            ServingSimulator(tissue_flat).run([], [])


class TestMulticlientWorkload:
    def test_staggered_start_ticks(self, tissue):
        clients = multiclient_sessions(
            tissue, n_clients=3, seed=5, n_queries=2, volume=30_000.0, stagger=2
        )
        assert [c.start_tick for c in clients] == [0, 2, 4]
        assert [c.client_id for c in clients] == [0, 1, 2]

    def test_hotspot_draws_from_pool(self, tissue):
        clients = multiclient_sessions(
            tissue, n_clients=6, seed=5, n_queries=2, volume=30_000.0,
            mode="hotspot", hot_pool=2,
        )
        distinct = {id(c.sequence) for c in clients}
        assert len(distinct) <= 2  # at most the pool size
        assert len(clients) == 6

    def test_zipf_weights_normalized_and_skewed(self):
        weights = zipf_weights(5, 1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.5)

    def test_rejects_bad_arguments(self, tissue):
        with pytest.raises(ValueError, match="n_clients"):
            multiclient_sessions(tissue, 0, 5, n_queries=2, volume=30_000.0)
        with pytest.raises(ValueError, match="stagger"):
            multiclient_sessions(tissue, 1, 5, n_queries=2, volume=30_000.0, stagger=-1)
        with pytest.raises(ValueError, match="unknown mode"):
            multiclient_sessions(tissue, 1, 5, n_queries=2, volume=30_000.0, mode="flood")
