"""Differential test plane for the tiered storage subsystem.

The tentpole guarantee of DESIGN.md §9 is *pass-through identity*: a
:class:`~repro.storage.tiered.TieredStore` built from the default
(disabled) :class:`~repro.storage.tiered.StorageSpec` must be
bit-identical to the bare :class:`~repro.storage.disk.DiskModel` it
wraps -- every return value, every stat, after every operation.  The
differential properties here let hypothesis search the operation space
for a divergence; the serving-level tests then lift the guarantee to
whole :class:`~repro.sim.serve.ServingSimulator` reports and prove the
two schedulers stay bit-identical *with* tiering enabled.

The second family of properties checks the layer accounting itself:
each requested page resolves at exactly one layer, so the counters
partition the request stream (``requests == tier hits + mechanism hits
+ backing fills``) under every miss-path mechanism and any operation
sequence hypothesis can produce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import DiskModel
from repro.storage.tiered import (
    MISS_PATHS,
    StorageSpec,
    TieredStore,
    make_storage,
)

#: Small page universe so read batches collide (tier hits, victim
#: swap-backs, stream-buffer pickups on page+1 runs).
page_ids = st.integers(min_value=0, max_value=24)
batches = st.lists(page_ids, min_size=0, max_size=8)

#: Operation mix covering the full shared disk surface.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("read"), batches),
        st.tuples(st.just("trim"), batches),
        st.tuples(st.just("cost"), batches),
        st.tuples(st.just("estimate"), st.integers(min_value=0, max_value=12)),
        st.tuples(st.just("reset_head"), st.none()),
        st.tuples(st.just("reset_stats"), st.none()),
    ),
    max_size=30,
)

active_specs = st.builds(
    StorageSpec,
    miss_path=st.sampled_from(MISS_PATHS),
    tier_pages=st.integers(min_value=0, max_value=6),
    victim_entries=st.integers(min_value=1, max_value=4),
    miss_entries=st.integers(min_value=1, max_value=6),
    stream_depth=st.integers(min_value=1, max_value=3),
)


def _apply(disk, op, arg):
    if op == "read":
        return disk.read_pages(arg)
    if op == "trim":
        return disk.trim_to_budget(arg, 0.005)
    if op == "cost":
        return disk.cost_if_cold(arg)
    if op == "estimate":
        return disk.estimate_read_time(arg)
    if op == "reset_head":
        return disk.reset_head()
    return disk.reset_stats()


class TestDisabledStoreIsTheBareDisk:
    """Op-by-op differential identity of the pass-through configuration."""

    @settings(deadline=None, max_examples=60)
    @given(ops=operations)
    def test_every_operation_matches_bit_for_bit(self, ops):
        bare = DiskModel()
        tiered = TieredStore(DiskModel(), StorageSpec())
        assert not tiered.tiering_active
        for op, arg in ops:
            expected = _apply(bare, op, arg)
            actual = _apply(tiered, op, arg)
            # Exact equality, not approx: the disabled path delegates
            # verbatim, so even the float arithmetic is the same.
            assert actual == expected, f"{op}({arg}) diverged"
            assert tiered.stats == bare.stats
            assert tiered.params == bare.params

    @settings(deadline=None, max_examples=60)
    @given(ops=operations)
    def test_disabled_store_leaves_tier_counters_untouched(self, ops):
        tiered = TieredStore(DiskModel(), StorageSpec())
        for op, arg in ops:
            _apply(tiered, op, arg)
        ts = tiered.tier_stats
        assert ts.requests == 0
        assert ts.backing_pages == 0
        assert ts.tier_hits == ts.mechanism_hits == 0


class TestLayerPartitionInvariant:
    """Every requested page resolves at exactly one layer."""

    @settings(deadline=None, max_examples=80)
    @given(spec=active_specs, reads=st.lists(batches, max_size=25))
    def test_counters_partition_the_request_stream(self, spec, reads):
        store = TieredStore(DiskModel(), spec)
        n_requested = 0
        for batch in reads:
            store.read_pages(batch)
            n_requested += len(set(batch))
            ts = store.tier_stats
            assert ts.requests == (0 if not store.tiering_active else n_requested)
            assert ts.requests == (
                ts.tier_hits + ts.victim_hits + ts.stream_hits + ts.miss_hits
                + ts.backing_pages + ts.failed_fills
            )
            # The healthy inner disk never fails a fill.
            assert ts.failed_fills == 0

    @settings(deadline=None, max_examples=60)
    @given(spec=active_specs, reads=st.lists(batches, max_size=25))
    def test_structure_capacities_hold_after_every_read(self, spec, reads):
        store = TieredStore(DiskModel(), spec)
        for batch in reads:
            store.read_pages(batch)
            assert len(store._tier) <= spec.tier_pages
            assert len(store._victim) <= spec.victim_entries
            assert len(store._miss_tags) <= spec.miss_entries
            assert len(store._stream) <= spec.stream_depth * 4

    @settings(deadline=None, max_examples=60)
    @given(spec=active_specs, reads=st.lists(batches, max_size=15))
    def test_reset_stats_restores_the_pristine_store(self, spec, reads):
        store = TieredStore(DiskModel(), spec)
        for batch in reads:
            store.read_pages(batch)
        store.reset_stats()
        pristine = TieredStore(DiskModel(), spec)
        assert store.tier_stats == pristine.tier_stats
        assert store.stats == pristine.stats
        assert not store._tier and not store._victim
        assert not store._stream and not store._miss_tags

    def test_mechanisms_absorb_backing_reads(self):
        # A deterministic re-read: the second pass over the same pages
        # must be absorbed by the tier, never the backing store.
        store = TieredStore(DiskModel(), StorageSpec(tier_pages=8))
        store.read_pages([1, 2, 3])
        before = store.tier_stats.backing_pages
        elapsed = store.read_pages([1, 2, 3])
        assert elapsed == 0.0
        assert store.tier_stats.backing_pages == before
        assert store.tier_stats.tier_hits == 3

    def test_victim_buffer_catches_tier_evictions(self):
        store = TieredStore(DiskModel(), StorageSpec(miss_path="victim", tier_pages=1))
        store.read_pages([1])
        store.read_pages([2])  # evicts 1 into the victim buffer
        assert store.tier_stats.writebacks == 1
        store.read_pages([1])  # swapped back from the victim buffer
        assert store.tier_stats.victim_hits == 1

    def test_stream_buffer_prefills_sequential_successors(self):
        store = TieredStore(DiskModel(), StorageSpec(miss_path="stream", stream_depth=2))
        store.read_pages([4])
        store.read_pages([5])  # run successor: stream-buffer hit, no I/O
        ts = store.tier_stats
        assert ts.stream_hits == 1
        assert ts.backing_pages == 1

    def test_fill_stall_charges_simulated_time(self):
        spec = StorageSpec(tier_pages=4, fill_stall_s=0.25)
        store = TieredStore(DiskModel(), spec)
        elapsed = store.read_pages([7])
        bare = DiskModel().read_pages([7])
        assert elapsed == pytest.approx(bare + 0.25)
        assert store.tier_stats.stall_seconds == pytest.approx(0.25)
        assert store.stats.seconds_busy == pytest.approx(bare + 0.25)


class TestStorageSpec:
    def test_roundtrips_through_dict(self):
        spec = StorageSpec(miss_path="combined", tier_pages=5, fill_stall_s=0.1)
        assert StorageSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown storage spec key"):
            StorageSpec.from_dict({"tier_pages": 2, "victim_size": 3})

    def test_rejects_unknown_miss_path(self):
        with pytest.raises(ValueError, match="unknown miss path"):
            StorageSpec(miss_path="assoc")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            StorageSpec(backend="nvme")

    def test_make_storage_builds_both_backends(self):
        for backend in ("ram", "mmap"):
            store = make_storage(DiskModel(), StorageSpec(backend=backend))
            assert isinstance(store, TieredStore)

    def test_disabled_spec_is_not_active(self):
        assert not StorageSpec().tiering_active
        assert StorageSpec(tier_pages=1).tiering_active
        assert StorageSpec(miss_path="miss").tiering_active


# -- serving-level identity ---------------------------------------------------


def _serving_fixture(n_clients=3, n_queries=5):
    from repro.baselines import EWMAPrefetcher
    from repro.datagen import make_neuron_tissue
    from repro.index import FlatIndex
    from repro.workload.multiclient import multiclient_sessions

    dataset = make_neuron_tissue(n_neurons=8, seed=7)
    index = FlatIndex(dataset, fanout=16)
    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=30_000.0,
        mode="hotspot",
    )
    fleet = lambda: [EWMAPrefetcher(lam=0.3) for _ in clients]  # noqa: E731
    return index, clients, fleet


def _serve(index, clients, fleet, storage, **kwargs):
    from dataclasses import asdict

    from repro.sim import ServingSimulator, SimulationConfig

    config = SimulationConfig(storage=storage)
    return asdict(ServingSimulator(index, config).run(clients, fleet(), **kwargs))


@pytest.mark.parametrize("backend", ["ram", "mmap"])
def test_disabled_store_serving_report_matches_bare_disk(backend, tmp_path):
    index, clients, fleet = _serving_fixture()
    plain = _serve(index, clients, fleet, None)
    spec = StorageSpec(
        backend=backend,
        path=str(tmp_path / "pages.pf") if backend == "mmap" else None,
    )
    tiered = _serve(index, clients, fleet, spec)
    plain.pop("tiers_active")
    tiered.pop("tiers_active")
    # The mmap backend serves real bytes but charges no simulated time
    # on a healthy file, so even it is metric-identical.
    assert tiered == plain


@pytest.mark.parametrize("miss_path", MISS_PATHS)
def test_round_robin_and_lockstep_agree_over_a_tiered_store(miss_path):
    index, clients, fleet = _serving_fixture()
    spec = StorageSpec(miss_path=miss_path, tier_pages=6)
    rr = _serve(index, clients, fleet, spec, lockstep=False)
    ls = _serve(index, clients, fleet, spec, lockstep=True)
    assert rr == ls
    assert rr["tiers_active"]


def test_tier_counters_attribute_across_clients():
    from repro.sim import ServingSimulator, SimulationConfig

    index, clients, fleet = _serving_fixture()
    config = SimulationConfig(storage=StorageSpec(miss_path="combined", tier_pages=8))
    report = ServingSimulator(index, config).run(clients, fleet())
    assert report.tiers_active
    assert report.tier_hits == sum(c.tier_hits for c in report.clients) > 0
    assert report.tier_fills == sum(c.tier_fills for c in report.clients) > 0
    pooled = report.to_aggregate()
    assert pooled.tier_hits == report.tier_hits
    assert pooled.miss_path_hits == report.miss_path_hits
