"""Sharded stores, shard merging and the async writer.

The contract under test: spec-hash sharding partitions any cell grid
into disjoint slices whose union is the whole grid, independent shard
sweeps followed by ``merge_stores`` reproduce a single-process run's
per-cell payloads exactly, merging is idempotent, and the async writer
persists everything the synchronous path would.  ``TestSliceOf``
additionally pins that both keyed-stream splitters in the repo -- the
result store's ``shard_of`` and the sharded cache's ``hash``
partitioner -- are the one documented rule :func:`repro.util.slice_of`.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sim import (
    DatasetSpec,
    ExperimentMatrix,
    IndexSpec,
    ParallelRunner,
    PrefetcherSpec,
    ResultStore,
    ShardedResultStore,
    WorkloadSpec,
    merge_stores,
    run_cell,
    shard_of,
    shard_store_path,
)

TINY_DATASET = DatasetSpec("neuron", {"n_neurons": 6, "seed": 11})
TINY_INDEX = IndexSpec("flat", {"fanout": 16})
TINY_WORKLOAD = WorkloadSpec(n_sequences=2, n_queries=5, volume=20_000.0)

MATRIX = ExperimentMatrix(
    datasets=(TINY_DATASET,),
    indexes=(TINY_INDEX,),
    workloads=(TINY_WORKLOAD,),
    prefetchers=(
        PrefetcherSpec("none"),
        PrefetcherSpec("ewma", {"lam": 0.3}),
        PrefetcherSpec("straight-line"),
        PrefetcherSpec("velocity"),
        PrefetcherSpec("oracle"),
    ),
    seeds=(3, 4),
)


class TestShardAssignment:
    def test_shards_partition_the_grid(self):
        cells = MATRIX.cells()
        for n_shards in (1, 2, 3, 5):
            slices = [
                [c for c in cells if shard_of(c.key(), n_shards) == i]
                for i in range(n_shards)
            ]
            assert sum(len(s) for s in slices) == len(cells)
            seen = [c.key() for s in slices for c in s]
            assert len(seen) == len(set(seen))  # disjoint

    def test_assignment_is_deterministic(self):
        key = MATRIX.cells()[0].key()
        assert all(shard_of(key, 4) == shard_of(key, 4) for _ in range(10))
        assert 0 <= shard_of(key, 4) < 4

    def test_bad_shard_counts_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of("ab" * 32, 0)
        with pytest.raises(ValueError, match="shard index"):
            ShardedResultStore("s.jsonl", 2, 2)
        with pytest.raises(ValueError, match="n_shards"):
            ShardedResultStore("s.jsonl", 0, 0)

    def test_shard_store_path_decorates_stem(self, tmp_path):
        assert shard_store_path(tmp_path / "fig10.jsonl", 0, 2).name == "fig10.shard0of2.jsonl"
        assert shard_store_path(tmp_path / "fig10", 1, 3).name == "fig10.shard1of3.jsonl"

    def test_sharded_store_refuses_foreign_cells(self, tmp_path):
        cells = MATRIX.cells()
        store = ShardedResultStore(tmp_path / "s.jsonl", 0, 2, async_writes=False)
        foreign = next(c for c in cells if not store.owns(c.key()))
        with pytest.raises(ValueError, match="belongs to shard"):
            store.append(run_cell(foreign))


class TestSliceOf:
    """Both keyed-stream splitters stay pinned to ``repro.util.slice_of``.

    Changing the assignment rule in one call site but not the other
    would silently orphan persisted shard stores or reshuffle cache
    partitions; this class fails first.
    """

    def test_result_store_shard_of_is_slice_of(self):
        from repro.util import slice_of

        for key in (c.key() for c in MATRIX.cells()):
            for n_shards in (1, 2, 3, 7):
                assert shard_of(key, n_shards) == int(
                    slice_of(int(key[:16], 16), n_shards)
                )

    def test_hash_partitioner_is_slice_of(self):
        from repro.storage.cache import make_cache
        from repro.storage.sharded import ShardedCache, ShardSpec
        from repro.util import slice_of

        k = 4
        cache = ShardedCache(
            ShardSpec(n_shards=k, partition="hash"),
            [make_cache("dict", 4) for _ in range(k)],
        )
        pages = np.arange(64, dtype=np.int64)
        assert np.array_equal(cache.route_many(pages), slice_of(pages, k))
        for page in pages:
            assert cache.route(int(page)) == int(slice_of(int(page), k))

    def test_slice_of_validates_and_broadcasts(self):
        from repro.util import slice_of

        with pytest.raises(ValueError, match="n_slices"):
            slice_of(3, 0)
        routed = slice_of(np.array([0, 5, 13], dtype=np.int64), 4)
        assert routed.tolist() == [0, 1, 1]


class TestShardedSweepMerge:
    def _run_sharded(self, tmp_path, n_shards=2):
        base = tmp_path / "sweep.jsonl"
        shard_paths = []
        for i in range(n_shards):
            with ShardedResultStore(base, i, n_shards, async_writes=True) as store:
                cells = store.owned_cells(MATRIX.cells())
                ParallelRunner(jobs=1, store=store).run(cells)
            shard_paths.append(store.path)
        return base, shard_paths

    def test_merged_shards_match_single_process_run(self, tmp_path):
        base, shard_paths = self._run_sharded(tmp_path)
        report = merge_stores(shard_paths, base)
        assert report.n_cells == len(MATRIX)
        assert report.conflict_keys == []

        full = ResultStore(tmp_path / "full.jsonl")
        ParallelRunner(jobs=1, store=full).run(MATRIX)
        merged = ResultStore(base).load()
        assert set(merged) == set(full.load())
        for key, result in full.load().items():
            assert merged[key].metrics == result.metrics
            assert merged[key].status == result.status

    def test_merge_is_idempotent(self, tmp_path):
        base, shard_paths = self._run_sharded(tmp_path)
        merge_stores(shard_paths, base)
        first = base.read_text()
        # Re-merging the shards -- and re-merging the merge output with
        # a shard -- must not change the store.
        merge_stores(shard_paths, base)
        assert base.read_text() == first
        merge_stores([base] + shard_paths, base)
        assert base.read_text() == first

    def test_merged_store_resumes_the_full_grid(self, tmp_path):
        base, shard_paths = self._run_sharded(tmp_path)
        merge_stores(shard_paths, base)
        report = ParallelRunner(jobs=1, store=ResultStore(base)).run(MATRIX)
        assert report.n_computed == 0
        assert report.n_skipped == len(MATRIX)

    def test_merge_prefers_ok_over_failure_records(self, tmp_path):
        ok = run_cell(MATRIX.cells()[0])
        failure = type(ok)(
            key=ok.key,
            spec=ok.spec,
            metrics=None,
            status="failed",
            attempts=2,
            error="RuntimeError: worker died",
        )
        ok_store = ResultStore(tmp_path / "ok.jsonl")
        ok_store.append(ok)
        failed_store = ResultStore(tmp_path / "failed.jsonl")
        failed_store.append(failure)

        # Failure earlier, success later: later record wins anyway.
        merge_stores([tmp_path / "failed.jsonl", tmp_path / "ok.jsonl"], tmp_path / "m1.jsonl")
        assert ResultStore(tmp_path / "m1.jsonl").load()[ok.key].ok
        # Success earlier, failure later: the ok record must survive.
        report = merge_stores(
            [tmp_path / "ok.jsonl", tmp_path / "failed.jsonl"], tmp_path / "m2.jsonl"
        )
        assert ResultStore(tmp_path / "m2.jsonl").load()[ok.key].ok
        assert report.conflict_keys == [ok.key]

    def test_merge_requires_inputs(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            merge_stores([], tmp_path / "out.jsonl")

    def test_merge_refuses_all_missing_inputs(self, tmp_path):
        # Proceeding would atomically truncate an existing out store.
        out = tmp_path / "out.jsonl"
        out.write_text(json.dumps(run_cell(MATRIX.cells()[0]).to_record()) + "\n")
        with pytest.raises(ValueError, match="no input store exists"):
            merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"], out)
        assert len(ResultStore(out).load()) == 1  # untouched

    def test_merge_tolerates_one_empty_shard(self, tmp_path):
        existing = ResultStore(tmp_path / "shard0.jsonl")
        existing.append(run_cell(MATRIX.cells()[0]))
        report = merge_stores(
            [tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"], tmp_path / "out.jsonl"
        )
        assert report.n_cells == 1
        assert report.missing_inputs == [tmp_path / "shard1.jsonl"]


class TestAsyncWriter:
    def test_async_appends_all_land_on_disk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cells = MATRIX.cells()[:4]
        with ResultStore(path, async_writes=True) as store:
            for spec in cells:
                store.append(run_cell(spec))
            store.flush()
            assert len(path.read_text().splitlines()) == len(cells)
        reloaded = ResultStore(path).load()
        assert set(reloaded) == {c.key() for c in cells}

    def test_async_matches_sync_records(self, tmp_path):
        spec = MATRIX.cells()[0]
        result = run_cell(spec)
        with ResultStore(tmp_path / "async.jsonl", async_writes=True) as async_store:
            async_store.append(result)
        sync_store = ResultStore(tmp_path / "sync.jsonl")
        sync_store.append(result)
        async_record = json.loads((tmp_path / "async.jsonl").read_text())
        sync_record = json.loads((tmp_path / "sync.jsonl").read_text())
        assert async_record == sync_record

    def test_load_waits_for_queued_writes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = MATRIX.cells()[0]
        with ResultStore(path, async_writes=True) as store:
            store.append(run_cell(spec))
            # A second store object sees the record only because load()
            # flushes the writer queue first.
            store.load(reload=True)
            assert spec.key() in ResultStore(path).load()

    def test_closed_writer_rejects_appends(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl", async_writes=True)
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.append(run_cell(MATRIX.cells()[0]))

    def test_runner_flushes_async_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cells = MATRIX.cells()[:3]
        with ResultStore(path, async_writes=True) as store:
            ParallelRunner(jobs=1, store=store).run(cells)
            # run() flushed: records are durable before the report returns.
            assert len(path.read_text().splitlines()) == len(cells)
