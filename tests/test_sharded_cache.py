"""Sharded cache plane: differential equivalence and partition laws.

The sharded data plane (DESIGN.md §10) is only allowed to move pages
between simulated nodes -- never to change what a consumer observes
when it isn't sharding.  This suite pins the contract from four sides:

* **K=1 pass-through**: a one-shard :class:`ShardedCache` is op-by-op
  identical to the bare backend it wraps -- same return values, same
  counters, same LRU listing -- over hypothesis-generated op sequences,
  for both cache backends.  This is the invariant that lets a disabled
  spec ride inside every golden fixture without regenerating them.
* **Partition laws**: routing is a total function onto ``[0, K)``,
  batch routing equals scalar routing elementwise, and per-shard
  counters exactly partition the top-level totals -- for both
  partitioning schemes, with and without rebalancing.
* **Serving invariance**: for a fixed multi-client workload the demand
  stream is partition-invariant (the total per-shard request count does
  not depend on K or the scheme), and the round-robin and lockstep
  schedulers produce bit-identical reports *through* a sharded cache,
  rebalancer included.
* **Determinism**: two identically-specced caches fed the same touch
  sequence rebalance identically -- same split keys, same event and
  moved-page counts, same per-shard stats.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import EWMAPrefetcher
from repro.sim import ServingSimulator, SimulationConfig
from repro.sim.results import metrics_from_dict, metrics_to_dict
from repro.storage.cache import make_cache
from repro.storage.sharded import (
    PARTITIONS,
    ShardSpec,
    ShardedCache,
    make_sharded_cache,
    page_hilbert_keys,
)
from repro.workload import multiclient_sessions

# -- op-sequence machinery ----------------------------------------------------------

PAGE_IDS = st.integers(0, 63)
PAGE_BATCHES = st.lists(PAGE_IDS, min_size=0, max_size=8)

OPS = st.one_of(
    st.tuples(st.just("touch"), PAGE_IDS),
    st.tuples(st.just("insert"), PAGE_IDS, st.sampled_from([None, 0, 1, 2])),
    st.tuples(st.just("insert_many"), PAGE_BATCHES, st.sampled_from([None, 0, 3])),
    st.tuples(st.just("discard"), PAGE_IDS),
    st.tuples(st.just("touch_many"), PAGE_BATCHES),
    st.tuples(st.just("contains_many"), PAGE_BATCHES),
    st.tuples(st.just("missing_many"), PAGE_BATCHES),
    st.tuples(st.just("owners_many"), PAGE_BATCHES),
    st.tuples(st.just("evicted_many"), PAGE_BATCHES),
)


def apply_op(cache, op):
    """Run one op; returns a comparable (hashable/listable) result."""
    name, *operands = op
    result = getattr(cache, name)(*operands)
    if isinstance(result, np.ndarray):
        return result.tolist()
    return result


def observable_state(cache) -> tuple:
    """Everything the cache contract exposes, comparably flattened."""
    return (
        len(cache),
        cache.capacity_pages,
        cache.is_full,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.insertions,
        cache.hit_rate,
        cache.cached_pages(),
    )


class TestPassThroughEquivalence:
    """K=1 is the bare backend: every op, every counter, every listing."""

    @settings(max_examples=60, deadline=None)
    @given(backend=st.sampled_from(["dict", "array"]), ops=st.lists(OPS, max_size=40))
    def test_one_shard_matches_bare_backend(self, backend, ops):
        bare = make_cache(backend, 8)
        sharded = ShardedCache(ShardSpec(n_shards=1), [make_cache(backend, 8)])
        for op in ops:
            assert apply_op(sharded, op) == apply_op(bare, op), op
            assert observable_state(sharded) == observable_state(bare), op
        assert sharded.hops == 0
        assert sharded.hop_seconds == 0.0
        assert sharded.rebalance_events == 0
        assert sharded.pages_moved == 0

    def test_one_shard_scalar_inspection_matches(self):
        bare = make_cache("dict", 4)
        sharded = ShardedCache(ShardSpec(n_shards=1), [make_cache("dict", 4)])
        for cache in (bare, sharded):
            cache.insert_many([3, 5, 9], owner=2)
            cache.touch_many([3, 7, 11])
            cache.insert_many(range(6), owner=1)  # evicts
        for page in range(16):
            assert (page in sharded) == (page in bare)
            assert sharded.owner_of(page) == bare.owner_of(page)
            assert sharded.was_evicted(page) == bare.was_evicted(page)
        sharded.clear()
        bare.clear()
        assert observable_state(sharded) == observable_state(bare)
        sharded.reset_stats()
        bare.reset_stats()
        assert observable_state(sharded) == observable_state(bare)


# -- partition laws -----------------------------------------------------------------


def hash_cache(k: int, *, pages_per_shard: int = 4) -> ShardedCache:
    return ShardedCache(
        ShardSpec(n_shards=k, partition="hash"),
        [make_cache("dict", pages_per_shard) for _ in range(k)],
    )


def hilbert_cache(index, k: int, *, pages_per_shard: int = 4, **spec_kwargs):
    spec = ShardSpec(
        n_shards=k,
        partition="hilbert",
        shard_cache_pages=pages_per_shard,
        **spec_kwargs,
    )
    return make_sharded_cache(spec, "dict", 0, index=index)


class TestPartitionLaws:
    @pytest.mark.parametrize("partition", PARTITIONS)
    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_routing_is_total_and_batch_equals_scalar(
        self, tissue_flat, partition, k
    ):
        if partition == "hash":
            cache = hash_cache(k)
        else:
            cache = hilbert_cache(tissue_flat, k)
        pages = np.arange(tissue_flat.page_table.n_pages, dtype=np.int64)
        routed = cache.route_many(pages)
        assert routed.min() >= 0 and routed.max() < k
        assert [cache.route(int(p)) for p in pages] == routed.tolist()

    @settings(max_examples=40, deadline=None)
    @given(k=st.integers(2, 6), ops=st.lists(OPS, max_size=30))
    def test_per_shard_counters_partition_the_totals(self, k, ops):
        cache = hash_cache(k)
        for op in ops:
            apply_op(cache, op)
        per = cache.per_shard_stats()
        assert len(per) == k
        assert sum(s["hits"] for s in per) == cache.hits
        assert sum(s["misses"] for s in per) == cache.misses
        assert sum(s["evictions"] for s in per) == cache.evictions
        assert sum(s["insertions"] for s in per) == cache.insertions
        assert sum(s["occupancy"] for s in per) == len(cache)
        assert sum(s["capacity_pages"] for s in per) == cache.capacity_pages

    def test_each_page_lands_only_on_its_owning_shard(self, tissue_flat):
        cache = hilbert_cache(tissue_flat, 4)
        n_pages = tissue_flat.page_table.n_pages
        cache.insert_many(np.arange(n_pages), owner=1)
        for shard_id, shard in enumerate(cache.shards):
            for page in shard.cached_pages():
                assert cache.route(page) == shard_id

    def test_capacity_split_covers_the_total(self):
        for total, k in [(10, 3), (8, 8), (5, 2), (0, 4)]:
            cache = make_sharded_cache(ShardSpec(n_shards=k, partition="hash"), "dict", total)
            assert cache.capacity_pages == total
        pinned = make_sharded_cache(
            ShardSpec(n_shards=3, partition="hash", shard_cache_pages=7), "dict", 999
        )
        assert [s.capacity_pages for s in pinned.shards] == [7, 7, 7]

    def test_hop_accounting_charges_per_extra_shard(self, tissue_flat):
        cache = hilbert_cache(tissue_flat, 4, hop_latency_s=0.25)
        pages = np.arange(tissue_flat.page_table.n_pages, dtype=np.int64)
        routed = cache.route_many(pages)
        span = int(np.unique(routed).size)
        assert span == 4  # the whole table fans out to every shard
        cache.touch_many(pages)
        assert cache.hops == span - 1
        assert cache.hop_seconds == pytest.approx((span - 1) * 0.25)
        one_shard = pages[routed == routed[0]]
        before = cache.hops
        cache.touch_many(one_shard)
        assert cache.hops == before  # single-shard batches are hop-free

    def test_split_keys_cut_near_equal_page_counts(self, tissue_flat):
        """Range splits balance pages up to boundary-key multiplicity.

        Pages sharing a Hilbert key are inseparable (they land on one
        shard by construction), so the per-shard page counts can differ
        from ``n / K`` by at most the heaviest key's multiplicity on
        each boundary.
        """
        keys = page_hilbert_keys(tissue_flat, bits=6)
        cache = hilbert_cache(tissue_flat, 4)
        routed = cache.route_many(np.arange(keys.size))
        counts = np.bincount(routed, minlength=4)
        heaviest = int(np.unique(keys, return_counts=True)[1].max())
        ideal = keys.size / 4
        assert np.all(np.abs(counts - ideal) <= heaviest + 1), counts


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(n_shards=0), "n_shards"),
            (dict(partition="range"), "unknown partition"),
            (dict(shard_cache_pages=-1), "shard_cache_pages"),
            (dict(hop_latency_s=-0.1), "hop_latency_s"),
            (dict(n_shards=2, partition="hash", rebalance=True), "rebalance requires"),
            (dict(rebalance_lambda=0.0), "rebalance_lambda"),
            (dict(rebalance_threshold=1.0), "rebalance_threshold"),
            (dict(rebalance_interval=0), "rebalance_interval"),
            (dict(hilbert_bits=0), "hilbert_bits"),
            (dict(hilbert_bits=17), "hilbert_bits"),
        ],
    )
    def test_bad_specs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ShardSpec(**kwargs)

    def test_spec_round_trips_through_dict(self):
        spec = ShardSpec(n_shards=4, partition="hilbert", rebalance=True, hilbert_bits=5)
        assert ShardSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown shard spec key"):
            ShardSpec.from_dict({"n_shards": 2, "replicas": 3})

    def test_wrapper_rejects_mismatched_shard_lists(self):
        with pytest.raises(ValueError, match="names 2 shards"):
            ShardedCache(ShardSpec(n_shards=2, partition="hash"), [make_cache("dict", 4)])
        with pytest.raises(ValueError, match="per-page keys"):
            ShardedCache(
                ShardSpec(n_shards=2), [make_cache("dict", 4), make_cache("dict", 4)]
            )
        with pytest.raises(ValueError, match="spatial index"):
            make_sharded_cache(ShardSpec(n_shards=2), "dict", 8)


# -- rebalancer determinism ---------------------------------------------------------


def skewed_batches(index, *, n_batches: int = 200, seed: int = 3):
    """Touch batches hammering the pages of one shard-0-heavy key range."""
    rng = np.random.default_rng(seed)
    keys = page_hilbert_keys(index, bits=6)
    hot = np.argsort(keys)[: max(4, keys.size // 8)]
    return [rng.choice(hot, size=6) for _ in range(n_batches)]


class TestRebalancer:
    def _fresh(self, index):
        return hilbert_cache(
            index, 4, pages_per_shard=8, rebalance=True, rebalance_interval=8
        )

    def test_skewed_load_triggers_deterministic_rebalancing(self, tissue_flat):
        batches = skewed_batches(tissue_flat)
        first, second = self._fresh(tissue_flat), self._fresh(tissue_flat)
        for cache in (first, second):
            for batch in batches:
                cache.insert_many(batch)
                cache.touch_many(batch)
        assert first.rebalance_events > 0
        assert first.rebalance_events == second.rebalance_events
        assert first.pages_moved == second.pages_moved
        assert np.array_equal(first.split_keys, second.split_keys)
        assert first.per_shard_stats() == second.per_shard_stats()
        assert first.cached_pages() == second.cached_pages()

    def test_rebalance_moves_pages_without_eviction_accounting(self, tissue_flat):
        cache = self._fresh(tissue_flat)
        for batch in skewed_batches(tissue_flat):
            cache.insert_many(batch, owner=1)
            cache.touch_many(batch)
        assert cache.rebalance_events > 0
        # Moved pages migrated, they did not die: every cached page is
        # still findable through routing, with its owner tag intact.
        for page in cache.cached_pages():
            assert page in cache
            assert cache.owner_of(page) == 1

    def test_split_keys_stay_sorted_across_rebalances(self, tissue_flat):
        cache = self._fresh(tissue_flat)
        for batch in skewed_batches(tissue_flat, n_batches=400, seed=9):
            cache.insert_many(batch)
            cache.touch_many(batch)
            splits = cache.split_keys
            assert np.all(np.diff(splits) >= 0)


# -- serving invariance -------------------------------------------------------------


def serve_sharded(tissue, index, shards, *, lockstep=False, n_clients=4):
    clients = multiclient_sessions(
        tissue,
        n_clients=n_clients,
        seed=21,
        n_queries=4,
        volume=30_000.0,
        mode="hotspot",
        stagger=1,
        hot_pool=1,
    )
    config = SimulationConfig(cache_capacity_pages=16, shards=shards)
    prefetchers = [EWMAPrefetcher(lam=0.3) for _ in clients]
    return ServingSimulator(index, config).run(clients, prefetchers, lockstep=lockstep)


class TestServingThroughShards:
    def test_disabled_spec_report_is_bit_identical_to_unsharded(
        self, tissue, tissue_flat
    ):
        bare = serve_sharded(tissue, tissue_flat, None)
        wrapped = serve_sharded(tissue, tissue_flat, ShardSpec(n_shards=1))
        assert dataclasses.asdict(wrapped) == dataclasses.asdict(bare)
        assert wrapped.shards_active is False
        assert wrapped.shard_requests is None

    @pytest.mark.parametrize("partition", PARTITIONS)
    @pytest.mark.parametrize("k", [2, 4])
    def test_round_robin_equals_lockstep_under_sharding(
        self, tissue, tissue_flat, partition, k
    ):
        spec = ShardSpec(n_shards=k, partition=partition, rebalance=partition == "hilbert")
        reference = serve_sharded(tissue, tissue_flat, spec, lockstep=False)
        vectorized = serve_sharded(tissue, tissue_flat, spec, lockstep=True)
        assert dataclasses.asdict(vectorized) == dataclasses.asdict(reference)

    def test_request_total_is_partition_invariant(self, tissue, tissue_flat):
        """The demand stream does not depend on K or the scheme.

        Every query touches its result pages whatever the layout, so
        ``sum(shard_requests)`` is a workload property: the same for
        hash and hilbert partitioning at every K, and equal to the
        cache's own hit+miss total.
        """
        totals = set()
        for partition in PARTITIONS:
            for k in (2, 4, 8):
                report = serve_sharded(
                    tissue, tissue_flat, ShardSpec(n_shards=k, partition=partition)
                )
                assert report.shards_active is True
                assert len(report.shard_requests) == k
                assert len(report.shard_hits) == k
                assert all(
                    h <= r for h, r in zip(report.shard_hits, report.shard_requests)
                )
                assert sum(report.shard_requests) == (
                    report.cache_hits + report.cache_misses
                )
                totals.add(sum(report.shard_requests))
        assert len(totals) == 1, totals

    def test_metrics_round_trip_preserves_shard_counters(self, tissue, tissue_flat):
        report = serve_sharded(tissue, tissue_flat, ShardSpec(n_shards=4))
        aggregate = report.to_aggregate()
        assert aggregate.shard_requests == report.shard_requests
        restored = metrics_from_dict(metrics_to_dict(aggregate))
        assert restored.shard_requests == aggregate.shard_requests
        assert restored.shard_hits == aggregate.shard_hits
        assert restored.shard_rebalances == aggregate.shard_rebalances
        assert restored.shard_pages_moved == aggregate.shard_pages_moved
