"""Unit and property tests for segment primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    AABB,
    Segment,
    clip_segment_to_aabb,
    point_segment_distance,
    segment_aabb_intersects,
    segment_lengths,
    segment_segment_distance,
    segments_aabb_mask,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords, coords).map(np.array)

UNIT = AABB([0, 0, 0], [1, 1, 1])


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment([0, 0, 0], [3, 4, 0])
        assert seg.length == pytest.approx(5.0)
        assert np.allclose(seg.midpoint, [1.5, 2, 0])

    def test_direction_unit(self):
        seg = Segment([0, 0, 0], [0, 0, 2])
        assert np.allclose(seg.direction, [0, 0, 1])

    def test_degenerate_direction_is_zero(self):
        seg = Segment([1, 1, 1], [1, 1, 1])
        assert np.allclose(seg.direction, 0.0)

    def test_aabb_includes_radius(self):
        seg = Segment([0, 0, 0], [1, 0, 0], radius=0.5)
        box = seg.aabb()
        assert np.allclose(box.lo, [-0.5, -0.5, -0.5])
        assert np.allclose(box.hi, [1.5, 0.5, 0.5])

    def test_point_at(self):
        seg = Segment([0, 0, 0], [2, 0, 0])
        assert np.allclose(seg.point_at(0.25), [0.5, 0, 0])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Segment([0, 0], [1, 1])


class TestPointSegmentDistance:
    def test_closest_interior(self):
        assert point_segment_distance([0.5, 1, 0], [0, 0, 0], [1, 0, 0]) == pytest.approx(1.0)

    def test_closest_endpoint(self):
        assert point_segment_distance([2, 0, 0], [0, 0, 0], [1, 0, 0]) == pytest.approx(1.0)

    def test_degenerate_segment(self):
        assert point_segment_distance([1, 1, 0], [0, 0, 0], [0, 0, 0]) == pytest.approx(np.sqrt(2))


class TestSegmentSegmentDistance:
    def test_crossing_segments(self):
        d = segment_segment_distance([0, 0, 0], [1, 0, 0], [0.5, -1, 0], [0.5, 1, 0])
        assert d == pytest.approx(0.0)

    def test_parallel_segments(self):
        d = segment_segment_distance([0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0])
        assert d == pytest.approx(1.0)

    def test_skew_segments(self):
        d = segment_segment_distance([0, 0, 0], [1, 0, 0], [0.5, -1, 1], [0.5, 1, 1])
        assert d == pytest.approx(1.0)

    def test_point_vs_point(self):
        d = segment_segment_distance([0, 0, 0], [0, 0, 0], [1, 1, 1], [1, 1, 1])
        assert d == pytest.approx(np.sqrt(3))

    @given(points, points, points, points)
    def test_symmetric(self, a0, a1, b0, b1):
        d1 = segment_segment_distance(a0, a1, b0, b1)
        d2 = segment_segment_distance(b0, b1, a0, a1)
        assert d1 == pytest.approx(d2, abs=1e-6)

    @given(points, points, points, points)
    def test_lower_bounded_by_sampled_distance(self, a0, a1, b0, b1):
        """The true minimum never exceeds any sampled pair distance."""
        d = segment_segment_distance(a0, a1, b0, b1)
        ts = np.linspace(0, 1, 5)
        sampled = min(
            float(np.linalg.norm((a0 + t * (a1 - a0)) - (b0 + s * (b1 - b0))))
            for t in ts
            for s in ts
        )
        assert d <= sampled + 1e-6


class TestClipping:
    def test_fully_inside(self):
        a, b = np.array([0.2, 0.2, 0.2]), np.array([0.8, 0.8, 0.8])
        clipped = clip_segment_to_aabb(a, b, UNIT)
        assert clipped is not None
        assert np.allclose(clipped[0], a) and np.allclose(clipped[1], b)

    def test_crossing_one_face(self):
        clipped = clip_segment_to_aabb([0.5, 0.5, 0.5], [2.0, 0.5, 0.5], UNIT)
        assert clipped is not None
        assert np.allclose(clipped[1], [1.0, 0.5, 0.5])

    def test_through_and_through(self):
        clipped = clip_segment_to_aabb([-1, 0.5, 0.5], [2, 0.5, 0.5], UNIT)
        assert clipped is not None
        assert np.allclose(clipped[0], [0, 0.5, 0.5])
        assert np.allclose(clipped[1], [1, 0.5, 0.5])

    def test_miss(self):
        assert clip_segment_to_aabb([2, 2, 2], [3, 3, 3], UNIT) is None

    def test_parallel_outside_slab(self):
        assert clip_segment_to_aabb([2, 0, 0], [2, 1, 0], UNIT) is None

    @given(points, points)
    def test_clipped_endpoints_inside_box(self, a, b):
        box = AABB([-10, -10, -10], [10, 10, 10])
        clipped = clip_segment_to_aabb(a, b, box)
        if clipped is not None:
            tolerance = 1e-7
            for p in clipped:
                assert np.all(p >= box.lo - tolerance)
                assert np.all(p <= box.hi + tolerance)


class TestVectorizedMask:
    def test_matches_scalar(self, rng):
        a = rng.uniform(-2, 3, size=(100, 3))
        b = rng.uniform(-2, 3, size=(100, 3))
        mask = segments_aabb_mask(a, b, UNIT)
        for i in range(100):
            assert mask[i] == segment_aabb_intersects(a[i], b[i], UNIT), i

    def test_lengths(self):
        a = np.zeros((2, 3))
        b = np.array([[3, 4, 0], [0, 0, 1]], dtype=float)
        assert np.allclose(segment_lengths(a, b), [5.0, 1.0])
