"""Grid index: bucketing, cell lookups, query exactness."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.index import GridIndex


class TestStructure:
    def test_pages_partition_objects(self, tissue, tissue_grid_index):
        seen = np.concatenate(
            [
                tissue_grid_index.page_table.objects_of_page(p)
                for p in range(tissue_grid_index.n_pages)
            ]
        )
        assert sorted(seen) == list(range(tissue.n_objects))

    def test_page_size_bounded_by_fanout(self, tissue_grid_index):
        for page in range(tissue_grid_index.n_pages):
            assert tissue_grid_index.page_table.page_size(page) <= tissue_grid_index.fanout

    def test_cell_of_page_consistent(self, tissue, tissue_grid_index):
        for page in range(min(50, tissue_grid_index.n_pages)):
            cell = tissue_grid_index.cell_of_page(page)
            assert page in tissue_grid_index.pages_of_cell(cell)

    def test_occupied_cells_nonempty(self, tissue_grid_index):
        cells = tissue_grid_index.occupied_cells()
        assert cells
        assert all(
            tissue_grid_index._pages_of_cell[c] for c in cells
        )

    def test_explicit_resolution_2d(self, roads):
        index = GridIndex(roads, cells_per_axis=8)
        assert index.grid.shape == (8, 8, 1)


class TestQueries:
    def test_matches_brute_force(self, tissue, tissue_grid_index):
        region = AABB.cube(tissue.bounds.center, 60_000.0)
        mask = np.all((tissue.obj_lo <= region.hi) & (tissue.obj_hi >= region.lo), axis=1)
        expected = set(np.flatnonzero(mask).tolist())
        got = set(tissue_grid_index.query(region).object_ids.tolist())
        assert got == expected

    def test_empty_region(self, tissue_grid_index):
        region = AABB([1e7] * 3, [1e7 + 1] * 3)
        assert tissue_grid_index.query(region).n_objects == 0

    def test_page_bounds_contain_objects(self, tissue, tissue_grid_index):
        for page in range(min(40, tissue_grid_index.n_pages)):
            box = tissue_grid_index.page_bounds(page)
            for obj in tissue_grid_index.page_table.objects_of_page(page):
                assert box.inflate(1e-9).contains_point(tissue.centroids[obj])
