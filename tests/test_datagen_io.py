"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.datagen import load_dataset, save_dataset


class TestRoundtrip:
    def test_neuron_tissue(self, tissue, tmp_path):
        path = tmp_path / "tissue.npz"
        save_dataset(tissue, path)
        loaded = load_dataset(path)
        assert loaded.name == tissue.name
        assert loaded.dims == tissue.dims
        assert np.array_equal(loaded.p0, tissue.p0)
        assert np.array_equal(loaded.p1, tissue.p1)
        assert np.array_equal(loaded.radius, tissue.radius)
        assert np.array_equal(loaded.structure_id, tissue.structure_id)
        assert np.array_equal(loaded.branch_id, tissue.branch_id)

    def test_navigation_graph_preserved(self, tissue, tmp_path):
        path = tmp_path / "tissue.npz"
        save_dataset(tissue, path)
        loaded = load_dataset(path)
        assert loaded.nav.n_nodes == tissue.nav.n_nodes
        assert loaded.nav.n_edges == tissue.nav.n_edges
        for a, b in zip(loaded.nav.edges, tissue.nav.edges):
            assert (a.u, a.v) == (b.u, b.v)
            assert np.allclose(a.polyline.points, b.polyline.points)
        # Walks behave identically on the loaded copy.
        w1 = tissue.nav.random_walk(np.random.default_rng(3), 100.0)
        w2 = loaded.nav.random_walk(np.random.default_rng(3), 100.0)
        assert np.allclose(w1.points, w2.points)

    def test_explicit_edges_preserved(self, lung, tmp_path):
        path = tmp_path / "lung.npz"
        save_dataset(lung, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.explicit_edges, lung.explicit_edges)

    def test_2d_dataset(self, roads, tmp_path):
        path = tmp_path / "roads.npz"
        save_dataset(roads, path)
        loaded = load_dataset(path)
        assert loaded.dims == 2
        assert np.array_equal(loaded.p0, roads.p0)

    def test_loaded_dataset_is_queryable(self, tissue, tmp_path):
        from repro.geometry import AABB
        from repro.index import STRTree

        path = tmp_path / "tissue.npz"
        save_dataset(tissue, path)
        loaded = load_dataset(path)
        index = STRTree(loaded, fanout=16)
        region = AABB.cube(loaded.bounds.center, 40_000.0)
        result = index.query(region)
        assert result.n_objects >= 0  # full pipeline works on the copy

    def test_version_check(self, tissue, tmp_path):
        import numpy as np

        path = tmp_path / "tissue.npz"
        save_dataset(tissue, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError):
            load_dataset(path)
