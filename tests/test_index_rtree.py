"""STR R-tree: structure invariants and query exactness vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.geometry import AABB
from repro.index import STRTree
from repro.index.rtree import str_partition


def toy_dataset(points: np.ndarray) -> Dataset:
    """Point-like dataset (zero-length segments) for index tests."""
    n = len(points)
    nav = NavigationGraph(
        np.array([[0.0, 0, 0], [1.0, 0, 0]]),
        [NavEdge(0, 1, Polyline(np.array([[0.0, 0, 0], [1.0, 0, 0]])))],
    )
    return Dataset(
        name="toy",
        p0=points,
        p1=points.copy(),
        radius=np.zeros(n),
        structure_id=np.zeros(n, dtype=np.int64),
        branch_id=np.zeros(n, dtype=np.int64),
        nav=nav,
    )


class TestStrPartition:
    def test_every_object_in_exactly_one_tile(self, rng):
        centers = rng.uniform(0, 10, size=(500, 3))
        tiles = str_partition(centers, fanout=16)
        all_ids = np.concatenate(tiles)
        assert sorted(all_ids) == list(range(500))

    def test_tile_sizes_bounded(self, rng):
        centers = rng.uniform(0, 10, size=(333, 3))
        for tile in str_partition(centers, fanout=16):
            assert 1 <= len(tile) <= 16

    def test_empty_input(self):
        assert str_partition(np.empty((0, 3)), fanout=8) == []


class TestTreeStructure:
    def test_single_page_dataset(self, rng):
        ds = toy_dataset(rng.uniform(0, 1, size=(5, 3)))
        tree = STRTree(ds, fanout=16)
        assert tree.n_pages == 1
        assert len(tree.pages_for_region(ds.bounds)) == 1
        far = AABB([100, 100, 100], [101, 101, 101])
        assert len(tree.pages_for_region(far)) == 0

    def test_pages_partition_objects(self, rng):
        ds = toy_dataset(rng.uniform(0, 10, size=(200, 3)))
        tree = STRTree(ds, fanout=16)
        seen = np.concatenate(
            [tree.page_table.objects_of_page(p) for p in range(tree.n_pages)]
        )
        assert sorted(seen) == list(range(200))

    def test_page_bounds_contain_their_objects(self, rng):
        ds = toy_dataset(rng.uniform(0, 10, size=(200, 3)))
        tree = STRTree(ds, fanout=16)
        for page in range(tree.n_pages):
            box = tree.page_bounds(page)
            for obj in tree.page_table.objects_of_page(page):
                assert box.contains_point(ds.p0[obj])

    def test_height_grows_with_size(self, rng):
        small = STRTree(toy_dataset(rng.uniform(0, 10, size=(30, 3))), fanout=4)
        large = STRTree(toy_dataset(rng.uniform(0, 10, size=(900, 3))), fanout=4)
        assert large.height > small.height

    def test_rejects_tiny_fanout(self, rng):
        with pytest.raises(ValueError):
            STRTree(toy_dataset(rng.uniform(0, 1, size=(5, 3))), fanout=1)


class TestQueryExactness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_query_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(150, 3))
        ds = toy_dataset(points)
        tree = STRTree(ds, fanout=8)
        lo = rng.uniform(0, 8, size=3)
        region = AABB(lo, lo + rng.uniform(0.5, 3, size=3))
        expected = set(np.flatnonzero(region.contains_points(points)).tolist())
        got = set(tree.query(region).object_ids.tolist())
        assert got == expected

    def test_query_on_real_tissue_matches_brute_force(self, tissue, tissue_rtree):
        region = AABB.cube(tissue.bounds.center, 60_000.0)
        mask = np.all(
            (tissue.obj_lo <= region.hi) & (tissue.obj_hi >= region.lo), axis=1
        )
        expected = set(np.flatnonzero(mask).tolist())
        got = set(tissue_rtree.query(region).object_ids.tolist())
        assert got == expected

    def test_result_pages_cover_result_objects(self, tissue, tissue_rtree):
        region = AABB.cube(tissue.bounds.center, 40_000.0)
        result = tissue_rtree.query(region)
        pages = set(result.page_ids.tolist())
        for obj in result.object_ids:
            assert tissue_rtree.page_table.page_of_object(int(obj)) in pages

    def test_whole_bounds_returns_everything(self, tissue, tissue_rtree):
        result = tissue_rtree.query(tissue.bounds.inflate(1.0))
        assert result.n_objects == tissue.n_objects
        assert result.n_pages == tissue_rtree.n_pages

    def test_empty_region(self, tissue_rtree):
        region = AABB([1e7, 1e7, 1e7], [1e7 + 1, 1e7 + 1, 1e7 + 1])
        result = tissue_rtree.query(region)
        assert result.n_objects == 0 and result.n_pages == 0


class TestPointLookup:
    def test_leaf_page_for_contained_point(self, tissue, tissue_rtree):
        point = tissue.centroids[0]
        page = tissue_rtree.leaf_page_for_point(point)
        assert tissue_rtree.page_bounds(page).contains_point(point)

    def test_leaf_page_for_far_point_returns_nearest(self, tissue, tissue_rtree):
        page = tissue_rtree.leaf_page_for_point(tissue.bounds.hi + 1e5)
        assert 0 <= page < tissue_rtree.n_pages
