"""Latency percentile math: exact quantiles, associative merge, recorder.

The serving daemon's report quality rests on three properties pinned
here:

* **exact nearest-rank quantiles** -- a reported p99 is a latency some
  request actually experienced (never an interpolation), checked
  against hand-computed values on known samples;
* **merge associativity** -- interval reports fold into run totals in
  any grouping and always equal one report over the union of samples,
  so per-interval and final summaries can never disagree;
* **percentile monotonicity** -- p50 <= p99 <= p999 <= max under
  arbitrary latency streams (hypothesis-generated), which the CI
  serve-smoke job asserts on real daemon output.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.latency import LatencyRecorder
from repro.sim.metrics import LatencyReport

latencies = st.lists(
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)


class TestQuantiles:
    def test_known_samples_exact(self):
        # Ten equally likely samples: nearest-rank p50 is the 5th, p90
        # the 9th, p99/p999/max all the 10th.
        report = LatencyReport.from_values([10, 1, 9, 2, 8, 3, 7, 4, 6, 5])
        assert report.quantile(0.50) == 5
        assert report.quantile(0.90) == 9
        assert report.p99 == 10
        assert report.p999 == 10
        assert report.max == 10

    def test_single_sample_is_every_quantile(self):
        report = LatencyReport.from_values([0.25])
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert report.quantile(q) == 0.25

    def test_quantile_zero_is_minimum(self):
        report = LatencyReport.from_values([3.0, 1.0, 2.0])
        assert report.quantile(0.0) == 1.0
        assert report.quantile(1.0) == 3.0

    def test_nearest_rank_never_interpolates(self):
        report = LatencyReport.from_values([1.0, 100.0])
        # Any quantile is one of the two observed values, never 50.5.
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert report.quantile(q) in (1.0, 100.0)

    def test_empty_report_is_nan(self):
        report = LatencyReport.from_values([])
        assert math.isnan(report.p50)
        assert math.isnan(report.max)
        assert math.isnan(report.mean)
        assert report.count == 0
        assert report.throughput_qps == 0.0

    def test_quantile_out_of_range_raises(self):
        report = LatencyReport.from_values([1.0])
        with pytest.raises(ValueError):
            report.quantile(1.5)
        with pytest.raises(ValueError):
            report.quantile(-0.1)

    @given(latencies)
    @settings(max_examples=100, deadline=None)
    def test_percentiles_monotone(self, values):
        report = LatencyReport.from_values(values)
        if not values:
            assert math.isnan(report.p50)
            return
        assert report.p50 <= report.p99 <= report.p999 <= report.max
        assert report.max == max(values)

    @given(latencies, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_is_an_observed_sample(self, values, q):
        if not values:
            return
        assert LatencyReport.from_values(values).quantile(q) in values


class TestMerge:
    def test_merge_equals_union(self):
        a = LatencyReport.from_values([3.0, 1.0], shed=1, duration_seconds=1.0)
        b = LatencyReport.from_values([2.0], errors=2, duration_seconds=0.5)
        merged = a.merge(b)
        assert merged.samples == (1.0, 2.0, 3.0)
        assert merged.shed == 1
        assert merged.errors == 2
        assert merged.duration_seconds == 1.5

    def test_merge_identity(self):
        a = LatencyReport.from_values([1.0, 2.0], shed=3)
        empty = LatencyReport.from_values([])
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    @given(latencies, latencies, latencies)
    @settings(max_examples=100, deadline=None)
    def test_merge_associative(self, xs, ys, zs):
        a = LatencyReport.from_values(xs, shed=1, duration_seconds=0.25)
        b = LatencyReport.from_values(ys, errors=2, duration_seconds=0.5)
        c = LatencyReport.from_values(zs, shed=3, duration_seconds=1.0)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        # ... and either grouping equals one report over the raw union.
        assert left == LatencyReport.from_values(
            list(xs) + list(ys) + list(zs),
            shed=4,
            errors=2,
            duration_seconds=1.75,
        )

    @given(latencies, latencies)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative(self, xs, ys):
        a = LatencyReport.from_values(xs)
        b = LatencyReport.from_values(ys)
        assert a.merge(b) == b.merge(a)


class TestSerialization:
    def test_roundtrip(self):
        report = LatencyReport.from_values(
            [0.001, 0.004, 0.002], shed=2, errors=1, duration_seconds=0.5
        )
        clone = LatencyReport.from_dict(report.to_dict())
        assert clone.shed == report.shed
        assert clone.errors == report.errors
        assert clone.duration_seconds == report.duration_seconds
        assert clone.samples == pytest.approx(report.samples)

    def test_summary_units_are_milliseconds(self):
        report = LatencyReport.from_values([0.002, 0.010], duration_seconds=1.0)
        summary = report.summary()
        assert summary["count"] == 2
        assert summary["max_ms"] == pytest.approx(10.0)
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["throughput_qps"] == pytest.approx(2.0)


class TestRecorder:
    def test_snapshot_resets_interval_but_accumulates_total(self):
        recorder = LatencyRecorder()
        recorder.observe(0.001)
        recorder.observe(0.002)
        recorder.count_shed()
        first = recorder.snapshot()
        assert first.count == 2
        assert first.shed == 1
        assert recorder.interval_count == 0
        recorder.observe(0.003)
        second = recorder.snapshot()
        assert second.count == 1
        total = recorder.total()
        assert total.count == 3
        assert total.shed == 1
        assert total.samples == (0.001, 0.002, 0.003)

    def test_total_includes_open_interval_without_reset(self):
        recorder = LatencyRecorder()
        recorder.observe(0.005)
        assert recorder.total().count == 1
        # total() must not have consumed the open interval.
        assert recorder.interval_count == 1
        assert recorder.snapshot().count == 1

    def test_negative_latency_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.observe(-0.001)
