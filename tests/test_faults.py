"""The fault-injection plane: plan spec, retry/backoff, breaker, recovery.

Four load-bearing guarantees are pinned here:

* **no-op transparency** -- a :class:`FaultPlan` with every rate at zero
  consumes no randomness and is *bit-identical* to the bare
  :class:`DiskModel`, both at the disk surface and through a whole
  experiment (the golden-fixture suite stays green because of this);
* **deterministic recovery** -- backoff sequences are a pure function of
  the plan seed, bounded by ``max_backoff_s``, and charged as simulated
  time (never wall-clock sleeps);
* **breaker trajectory** -- closed → open → half-open → closed under the
  documented thresholds, purely counter-driven;
* **accounting under faults** -- per-client ``shared_hits`` /
  ``shared_misses`` / ``failed_reads`` still partition the shared
  cache's totals exactly, and round-robin and lockstep serving stay
  bit-identical with faults active.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EWMAPrefetcher
from repro.sim import SimulationConfig, run_experiment
from repro.sim.results import ResultStore
from repro.sim.runner import (
    CellSpec,
    DatasetSpec,
    IndexSpec,
    PrefetcherSpec,
    WorkloadSpec,
    prepare_serving_cell,
    run_serving_cell,
)
from repro.sim.serve import ServingSimulator
from repro.storage import CircuitBreaker, DiskModel, FaultPlan, FaultyDiskModel, ReadFailure
from repro.workload import generate_sequences


# -- FaultPlan spec ----------------------------------------------------------------


class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan(transient_rate=0.2, corrupt_rate=0.1, seed=9, breaker=False)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan key"):
            FaultPlan.from_dict({"transient_rate": 0.1, "flaky_rate": 0.5})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_rate": 1.5},
            {"corrupt_rate": -0.1},
            {"latency_factor": 0.5},
            {"stuck_reads": 0},
            {"retry_limit": -1},
            {"breaker_threshold": 0},
            {"backoff_base_s": -1.0},
        ],
    )
    def test_validates_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_active_only_with_nonzero_rate(self):
        assert not FaultPlan().active
        assert not FaultPlan(seed=5, breaker=False).active
        assert FaultPlan(latency_rate=0.01).active

    def test_max_backoff_caps_the_exponential(self):
        plan = FaultPlan(backoff_base_s=0.01, backoff_cap_s=0.02, retry_limit=4)
        # 0.01 + 0.02 + 0.02 + 0.02, with the 1.5x jitter ceiling.
        assert plan.max_backoff_s == pytest.approx(1.5 * 0.07)


# -- no-op transparency ------------------------------------------------------------


class TestNoOpTransparency:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.lists(st.integers(0, 400), min_size=0, max_size=12), max_size=8))
    def test_noop_plan_is_bit_identical_to_bare_disk(self, batches):
        bare, faulty = DiskModel(), FaultyDiskModel(plan=FaultPlan())
        for batch in batches:
            assert faulty.read_pages(batch) == bare.read_pages(batch)
        assert asdict(faulty.stats) == asdict(bare.stats)

    def test_noop_plan_experiment_matches_plain_config(self, tissue, tissue_flat):
        sequences = generate_sequences(
            tissue, n_sequences=2, seed=3, n_queries=6, volume=60_000.0
        )
        plain = run_experiment(
            tissue_flat, sequences, EWMAPrefetcher(lam=0.3), SimulationConfig()
        )
        faulted = run_experiment(
            tissue_flat,
            sequences,
            EWMAPrefetcher(lam=0.3),
            SimulationConfig(faults=FaultPlan()),
        )
        assert asdict(plain.metrics) == asdict(faulted.metrics)

    def test_zero_rate_kinds_consume_no_randomness(self):
        # Enabling one kind must not perturb another's draw sequence:
        # transient-only and transient+latency plans see identical
        # transient draws at the same seed.
        lone = FaultyDiskModel(plan=FaultPlan(transient_rate=0.3, seed=4))
        mixed = FaultyDiskModel(
            plan=FaultPlan(transient_rate=0.3, latency_rate=0.5, seed=4)
        )
        for batch in ([1, 2], [9], [3, 4, 5], [7], [8, 10]):
            try:
                lone_cost = lone.read_pages(batch)
            except ReadFailure:
                with pytest.raises(ReadFailure):
                    mixed.read_pages(batch)
                continue
            mixed_cost = mixed.read_pages(batch)
            assert mixed_cost >= lone_cost
        assert lone.stats.transient_errors == mixed.stats.transient_errors
        assert lone.stats.backoff_seconds == mixed.stats.backoff_seconds


# -- retry/backoff -----------------------------------------------------------------


class TestRetryBackoff:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(0.05, 0.9))
    def test_deterministic_given_seed_and_bounded(self, seed, rate):
        plan = FaultPlan(transient_rate=rate, seed=seed)
        runs = []
        for _ in range(2):
            disk = FaultyDiskModel(plan=plan)
            costs = []
            for batch in ([1, 2, 3], [5], [4, 6], [2], [8, 9]):
                try:
                    costs.append(disk.read_pages(batch))
                except ReadFailure as failure:
                    costs.append(("fail", failure.seconds))
            runs.append((costs, asdict(disk.stats)))
        assert runs[0] == runs[1]
        # Every read's total backoff obeys the plan's analytic bound.
        stats = runs[0][1]
        n_reads = 5
        assert stats["backoff_seconds"] <= n_reads * plan.max_backoff_s + 1e-12

    def test_exhausted_retries_raise_and_charge(self):
        plan = FaultPlan(transient_rate=1.0, retry_limit=2, seed=0)
        disk = FaultyDiskModel(plan=plan)
        with pytest.raises(ReadFailure) as caught:
            disk.read_pages([1, 2])
        failure = caught.value
        assert failure.pages == [1, 2]
        assert 0.0 < failure.seconds <= plan.max_backoff_s
        assert disk.stats.retries_exhausted == 1
        assert disk.stats.retries == plan.retry_limit
        assert disk.stats.seconds_busy == pytest.approx(failure.seconds)
        # No pages were actually read.
        assert disk.stats.pages_read == 0

    def test_recovered_retries_count_and_charge_backoff(self):
        plan = FaultPlan(transient_rate=0.6, seed=1)
        disk = FaultyDiskModel(plan=plan)
        recovered = 0
        for batch in ([1], [2], [3], [4], [5], [6], [7], [8]):
            try:
                disk.read_pages(batch)
            except ReadFailure:
                pass
        recovered = disk.stats.retries_recovered
        assert recovered > 0
        assert disk.stats.backoff_seconds > 0.0
        assert disk.stats.transient_errors >= disk.stats.retries

    def test_recover_read_is_clean_and_counted(self):
        disk = FaultyDiskModel(plan=FaultPlan(transient_rate=1.0, retry_limit=0))
        with pytest.raises(ReadFailure):
            disk.read_pages([3, 4])
        cost = disk.recover_read([3, 4])
        assert cost > 0.0
        assert disk.stats.reread_pages == 2
        assert disk.stats.pages_read == 2


# -- read-repair -------------------------------------------------------------------


class TestReadRepair:
    def test_corrupt_pages_detected_and_reread(self, tissue_flat):
        page_table = tissue_flat.page_table
        disk = FaultyDiskModel(plan=FaultPlan(corrupt_rate=1.0, seed=2))
        pages = [0, 1, 2]
        disk.read_pages(pages)
        repair_cost = disk.verify_delivery(pages, page_table)
        assert repair_cost > 0.0
        assert disk.stats.corrupt_detected == len(pages)
        assert disk.stats.reread_pages == len(pages)
        # The taint set is consumed: verifying again is free.
        assert disk.verify_delivery(pages, page_table) == 0.0

    def test_clean_reads_verify_for_free(self, tissue_flat):
        disk = FaultyDiskModel(plan=FaultPlan(corrupt_rate=0.0))
        disk.read_pages([0, 1])
        assert disk.verify_delivery([0, 1], tissue_flat.page_table) == 0.0
        assert disk.stats.corrupt_detected == 0


# -- circuit breaker ---------------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_open_half_open_closed(self):
        breaker = CircuitBreaker(threshold=2, cooldown=3)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        # Cooldown burns one query per allow_prefetch() call.
        assert not breaker.allow_prefetch()
        assert not breaker.allow_prefetch()
        assert breaker.allow_prefetch()  # cooldown exhausted -> half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.half_opens == 1
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.closes == 1

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow_prefetch()  # cooldown=1 -> immediate probe
        breaker.record_failure()  # probe fails
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    @settings(deadline=None, max_examples=30)
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
        threshold=st.integers(1, 4),
        cooldown=st.integers(1, 4),
    )
    def test_trajectory_is_deterministic_and_consistent(self, outcomes, threshold, cooldown):
        runs = []
        for _ in range(2):
            breaker = CircuitBreaker(threshold=threshold, cooldown=cooldown)
            trace = []
            for ok in outcomes:
                allowed = breaker.allow_prefetch()
                trace.append((allowed, breaker.state))
                if allowed:
                    (breaker.record_success if ok else breaker.record_failure)()
            runs.append((trace, breaker.opens, breaker.half_opens, breaker.closes))
        assert runs[0] == runs[1]
        trace, opens, half_opens, closes = runs[0]
        # A denied query only ever happens with the breaker open, and
        # every close was preceded by a half-open probe.
        assert all(state == CircuitBreaker.OPEN for allowed, state in trace if not allowed)
        assert closes <= half_opens <= opens


# -- serving under faults ----------------------------------------------------------


def chaos_cell(rate: float, *, breaker: bool = True, n_clients: int = 3) -> CellSpec:
    return CellSpec(
        dataset=DatasetSpec("neuron", {"n_neurons": 8, "seed": 7}),
        index=IndexSpec("flat", {"fanout": 16}),
        workload=WorkloadSpec(
            n_sequences=n_clients, n_queries=8, volume=60_000.0,
            gap=0.0, aspect="cube", window_ratio=1.0,
        ),
        prefetcher=PrefetcherSpec("ewma", {"lam": 0.3}),
        seed=21,
        serve={"n_clients": n_clients, "mode": "hotspot", "stagger": 1},
        faults={
            "transient_rate": rate,
            "corrupt_rate": rate / 2.0,
            "latency_rate": rate / 2.0,
            "seed": 11,
            "breaker": breaker,
        },
    )


class TestServingUnderFaults:
    @pytest.mark.parametrize("rate", [0.3, 0.7])
    def test_partition_holds_with_failed_reads(self, rate):
        index, clients, prefetchers, config = prepare_serving_cell(chaos_cell(rate))
        report = ServingSimulator(index, config).run(clients, prefetchers)
        hits = sum(c.shared_hits for c in report.clients)
        misses = sum(c.shared_misses for c in report.clients)
        failed = sum(c.failed_reads for c in report.clients)
        assert hits == report.cache_hits
        assert misses + failed == report.cache_misses

    def test_round_robin_and_lockstep_identical_under_faults(self):
        spec = chaos_cell(0.7)
        index, clients, prefetchers, config = prepare_serving_cell(spec)
        sim = ServingSimulator(index, config)
        reference = sim.run(clients, prefetchers, lockstep=False)
        _, fresh_clients, fresh_prefetchers, _ = prepare_serving_cell(spec)
        vectorized = sim.run(fresh_clients, fresh_prefetchers, lockstep=True)
        assert asdict(reference) == asdict(vectorized)

    def test_breaker_degrades_and_surfaces_counters(self):
        spec = chaos_cell(0.7)
        index, clients, prefetchers, config = prepare_serving_cell(spec)
        report = ServingSimulator(index, config).run(clients, prefetchers)
        assert report.faults_active
        assert report.breaker_opens > 0
        assert report.degraded_ticks > 0
        pooled = report.to_aggregate()
        assert pooled.degraded_ticks == report.degraded_ticks
        assert pooled.breaker_opens == report.breaker_opens
        assert pooled.failed_reads == report.failed_reads

    def test_breaker_off_never_degrades(self):
        spec = chaos_cell(0.7, breaker=False)
        index, clients, prefetchers, config = prepare_serving_cell(spec)
        report = ServingSimulator(index, config).run(clients, prefetchers)
        assert report.breaker_opens == 0
        assert report.degraded_ticks == 0

    def test_share_plans_unavailable_under_faults(self):
        index, clients, prefetchers, config = prepare_serving_cell(chaos_cell(0.0))
        with pytest.raises(ValueError, match="share_plans"):
            ServingSimulator(index, config).run(
                clients, prefetchers, lockstep=True, share_plans=True
            )


# -- the store round trip ----------------------------------------------------------


class TestFaultSpecPersistence:
    def test_faultless_spec_dict_has_no_faults_key(self):
        spec = chaos_cell(0.5)
        bare = CellSpec(
            dataset=spec.dataset, index=spec.index, workload=spec.workload,
            prefetcher=spec.prefetcher, seed=spec.seed, serve=spec.serve,
        )
        assert "faults" not in bare.to_dict()  # pre-fault cell keys survive
        assert "faults" in spec.to_dict()
        assert spec.key() != bare.key()

    def test_spec_round_trips_through_store(self, tmp_path):
        spec = chaos_cell(0.5)
        result, report = run_serving_cell(spec)
        assert result.ok
        assert result.metrics.failed_reads is not None
        with ResultStore(tmp_path / "chaos.jsonl", async_writes=True) as store:
            store.append(result)
            store.flush()
        loaded = ResultStore(tmp_path / "chaos.jsonl").load()[spec.key()]
        assert loaded.spec == spec.to_dict()
        assert CellSpec.from_dict(loaded.spec) == spec
        assert asdict(loaded.metrics) == asdict(result.metrics)
        # Reproducible from the spec alone, as any stored cell must be.
        rerun, _ = run_serving_cell(CellSpec.from_dict(loaded.spec))
        assert asdict(rerun.metrics) == asdict(loaded.metrics)


# -- store durability (torn final line) ---------------------------------------------


class TestTornLineRecovery:
    def write_two_cells(self, path):
        spec_a, spec_b = chaos_cell(0.0), chaos_cell(0.5)
        result_a, _ = run_serving_cell(spec_a)
        result_b, _ = run_serving_cell(spec_b)
        with ResultStore(path) as store:
            store.append(result_a)
            store.append(result_b)
        return spec_a, spec_b

    def test_torn_final_line_counts_corrupt_not_abort(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        spec_a, _ = self.write_two_cells(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # tear the tail mid-record
        store = ResultStore(path)
        results = store.load()
        assert store.n_corrupt >= 1
        assert spec_a.key() in results

    def test_torn_multibyte_line_does_not_abort(self, tmp_path):
        # A crash can cut a UTF-8 sequence in half; text-mode decoding of
        # the whole file would raise before json ever saw the line.
        path = tmp_path / "torn_utf8.jsonl"
        good = b'{"key": "k1", "spec": {}, "metrics": null, "status": "failed", "error": "x"}\n'
        torn = '{"key": "k2", "error": "café"'.encode()[:-1]
        path.write_bytes(good + torn)
        store = ResultStore(path)
        store.load()
        assert store.n_lines == 2
        assert store.n_corrupt >= 1

    def test_async_flush_syncs_the_file(self, tmp_path):
        path = tmp_path / "durable.jsonl"
        spec = chaos_cell(0.0)
        result, _ = run_serving_cell(spec)
        store = ResultStore(path, async_writes=True)
        store.append(result)
        store.flush()
        # The line is on disk (readable by an independent handle) the
        # moment flush() returns, not merely queued.
        assert spec.key() in ResultStore(path).load()
        store.close()
