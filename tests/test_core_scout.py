"""SCOUT prefetcher: strategies, planning, prediction cost, SCOUT-OPT."""

import numpy as np
import pytest

from repro.baselines import ObservedQuery
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.core.strategies import plan_targets
from repro.geometry import AABB
from repro.workload import generate_sequence


def drive(prefetcher, index, sequence, n=None):
    """Feed the first n queries of a sequence through a prefetcher."""
    prefetcher.begin_sequence()
    for i, query in enumerate(sequence.queries[: n or len(sequence.queries)]):
        result = index.query(query.bounds)
        prefetcher.observe(ObservedQuery(i, query.bounds, result.object_ids))
    return prefetcher


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ScoutConfig(strategy="sideways")
        with pytest.raises(ValueError):
            ScoutConfig(grid_resolution=0)
        with pytest.raises(ValueError):
            ScoutConfig(max_prefetch_locations=0)
        with pytest.raises(ValueError):
            ScoutConfig(gap_io_budget_fraction=1.5)


class TestScoutBehaviour:
    def test_produces_targets_after_observation(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq, n=3)
        targets = scout.plan()
        assert targets
        for target in targets:
            assert np.isfinite(target.anchor).all()
            assert target.share > 0

    def test_targets_start_near_query_boundary(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq, n=3)
        last_bounds = seq.queries[2].bounds
        side = 40_000.0 ** (1 / 3)
        for target in scout.plan():
            # Exit anchors sit on (or just beyond) the query boundary.
            assert last_bounds.distance_to_point(target.anchor) < side

    def test_candidates_shrink_along_sequence(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=10, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq)
        sizes = scout.tracker.candidate_sizes
        assert len(sizes) == 10
        assert np.mean(sizes[-3:]) <= np.mean(sizes[:3])

    def test_prediction_cost_positive_and_chargeable(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq, n=2)
        assert scout.prediction_cost_seconds() > 0
        assert scout.graph_build_cost_seconds() > 0
        assert scout.graph_build_cost_seconds() <= scout.prediction_cost_seconds()

    def test_cost_charging_can_be_disabled(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        scout = drive(
            ScoutPrefetcher(tissue, ScoutConfig(charge_prediction_cost=False)),
            tissue_flat,
            seq,
            n=2,
        )
        assert scout.prediction_cost_seconds() == 0.0

    def test_begin_sequence_resets_state(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq, n=3)
        scout.begin_sequence()
        assert scout.n_candidates == 0
        assert scout.plan() == []

    def test_gap_estimate_tracks_spacing(self, tissue, tissue_flat, rng):
        gapped = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0, gap=12.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, gapped, n=3)
        assert scout.estimated_gap() == pytest.approx(12.0, abs=5.0)

    def test_memory_accounting_positive(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq, n=2)
        assert scout.last_graph_memory_bytes > 0


class TestStrategies:
    def build_tracker(self, tissue, tissue_flat, rng, config):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue, config), tissue_flat, seq, n=4)
        return scout

    def test_deep_single_target(self, tissue, tissue_flat, rng):
        scout = self.build_tracker(tissue, tissue_flat, rng, ScoutConfig(strategy="deep"))
        targets = scout.plan()
        assert len(targets) == 1
        assert targets[0].share == 1.0

    def test_broad_limits_locations(self, tissue, tissue_flat, rng):
        config = ScoutConfig(strategy="broad", max_prefetch_locations=3)
        scout = self.build_tracker(tissue, tissue_flat, rng, config)
        targets = scout.plan()
        assert 1 <= len(targets) <= 3

    def test_broad_shares_sum_to_one(self, tissue, tissue_flat, rng):
        config = ScoutConfig(strategy="broad", max_prefetch_locations=4)
        scout = self.build_tracker(tissue, tissue_flat, rng, config)
        targets = scout.plan()
        if targets:
            assert sum(t.share for t in targets) == pytest.approx(1.0)

    def test_empty_tracker_plans_nothing(self):
        from repro.core.candidates import CandidateTracker

        tracker = CandidateTracker()
        rng = np.random.default_rng(0)
        assert plan_targets(tracker, ScoutConfig(), rng, side=10.0, gap=0.0) == []


class TestScoutOpt:
    def test_same_prediction_as_scout_without_gaps(self, tissue, tissue_flat, rng):
        """§7.1: without gaps SCOUT and SCOUT-OPT perform identically."""
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0, gap=0.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        t_scout = scout.plan()
        t_opt = opt.plan()
        assert len(t_scout) == len(t_opt)
        for a, b in zip(t_scout, t_opt):
            assert np.allclose(a.anchor, b.anchor)

    def test_no_gap_io_without_gaps(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0, gap=0.0)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        assert opt.total_gap_pages == 0

    def test_gap_traversal_requests_pages(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0, gap=15.0)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        assert opt.total_gap_pages > 0

    def test_gap_io_respects_budget(self, tissue, tissue_flat, rng):
        config = ScoutConfig(gap_io_budget_fraction=0.10)
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0, gap=15.0)
        opt = ScoutOptPrefetcher(tissue, tissue_flat, config)
        opt.begin_sequence()
        for i, query in enumerate(seq.queries):
            result = tissue_flat.query(query.bounds)
            opt.observe(ObservedQuery(i, query.bounds, result.object_ids))
            pages = opt.gap_io_pages()
            budget = max(1, int(0.10 * len(tissue_flat.pages_for_region(query.bounds))))
            n_exits = max(1, len(opt.tracker.all_exits()))
            # Each exit gets its per-exit slice; small overshoot allowed
            # because the last probe of each exit may span several pages.
            assert len(set(pages)) <= (budget + n_exits * 8)

    def test_gap_io_pages_consumed_once(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0, gap=15.0)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        first = opt.gap_io_pages()
        assert opt.gap_io_pages() == []

    def test_lower_prediction_cost_than_scout(self, tissue, tissue_flat, rng):
        """Sparse construction overlaps graph building with result I/O."""
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        assert opt.prediction_cost_seconds() <= scout.prediction_cost_seconds()

    def test_lower_memory_than_scout(self, tissue, tissue_flat, rng):
        """§8.2: SCOUT-OPT keeps only the candidate subgraph (~6% vs ~24%)."""
        seq = generate_sequence(tissue, rng, n_queries=6, volume=60_000.0)
        scout = drive(ScoutPrefetcher(tissue), tissue_flat, seq)
        opt = drive(ScoutOptPrefetcher(tissue, tissue_flat), tissue_flat, seq)
        assert opt.last_graph_memory_bytes <= scout.last_graph_memory_bytes
