"""SCOUT-OPT gap traversal (§6.3) on controlled geometries.

Builds datasets whose structures bend inside a gap region and checks
that the traversal follows the bend where linear extrapolation cannot.
"""

import numpy as np
import pytest

from repro.core import ScoutConfig, ScoutOptPrefetcher
from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.index import FlatIndex


def polyline_dataset(points: np.ndarray, pad_objects: int = 300, seed: int = 0) -> Dataset:
    """One guiding chain plus random background clutter for the index."""
    rng = np.random.default_rng(seed)
    p0 = [points[i] for i in range(len(points) - 1)]
    p1 = [points[i + 1] for i in range(len(points) - 1)]
    branch = [0] * len(p0)
    lo = points.min(axis=0) - 30
    hi = points.max(axis=0) + 30
    for _ in range(pad_objects):
        a = rng.uniform(lo, hi)
        b = a + rng.normal(scale=1.5, size=3)
        p0.append(a)
        p1.append(b)
        branch.append(1 + len(branch))
    n = len(p0)
    nav = NavigationGraph(
        np.array([points[0], points[-1]]), [NavEdge(0, 1, Polyline(points))]
    )
    return Dataset(
        name="gap-chain",
        p0=np.array(p0),
        p1=np.array(p1),
        radius=np.zeros(n),
        structure_id=np.array(
            [0] * (len(points) - 1) + list(range(1, n - len(points) + 2)), dtype=np.int64
        ),
        branch_id=np.array(branch, dtype=np.int64),
        nav=nav,
    )


def bent_chain(bend_at: float, angle: float, length: float = 120.0, step: float = 2.0):
    """A chain along +x that turns by ``angle`` (in the xy plane) at x=bend_at."""
    points = [np.array([0.0, 0.0, 0.0])]
    direction = np.array([1.0, 0.0, 0.0])
    turned = False
    while np.linalg.norm(points[-1] - points[0]) < length:
        if not turned and points[-1][0] >= bend_at:
            c, s = np.cos(angle), np.sin(angle)
            direction = np.array([c * direction[0] - s * direction[1],
                                  s * direction[0] + c * direction[1], 0.0])
            turned = True
        points.append(points[-1] + direction * step)
    return np.array(points)


class TestGapTraversal:
    def make_opt(self, dataset, budget=0.5):
        index = FlatIndex(dataset, fanout=8)
        config = ScoutConfig(gap_io_budget_fraction=budget)
        return ScoutOptPrefetcher(dataset, index, config), index

    def test_follows_a_bend_better_than_linear(self):
        # Chain bends 50 degrees at x=30; gap region spans x in [20, 45].
        points = bent_chain(bend_at=30.0, angle=np.deg2rad(50))
        dataset = polyline_dataset(points)
        opt, index = self.make_opt(dataset)

        start = np.array([20.0, 0.0, 0.0])
        direction = np.array([1.0, 0.0, 0.0])
        gap = 25.0
        landed, heading, pages = opt._traverse_one_gap(start, direction, gap, page_budget=60)
        linear = start + direction * gap

        # The true structure point ~25 units of arc beyond the start.
        arc_target = None
        walked = 0.0
        for a, b in zip(points[:-1], points[1:]):
            seg = np.linalg.norm(b - a)
            if np.allclose(a[2], 0) and a[0] >= 20.0:
                walked += seg
                if walked >= gap:
                    arc_target = b
                    break
        assert arc_target is not None
        assert np.linalg.norm(landed - arc_target) < np.linalg.norm(linear - arc_target)
        assert pages  # it actually read pages

    def test_respects_page_budget(self):
        points = bent_chain(bend_at=30.0, angle=np.deg2rad(50))
        dataset = polyline_dataset(points)
        opt, index = self.make_opt(dataset)
        _, _, pages = opt._traverse_one_gap(
            np.array([20.0, 0, 0]), np.array([1.0, 0, 0]), gap=50.0, page_budget=3
        )
        # The loop stops as soon as the budget is reached; the final
        # probe may add a handful of pages at most.
        assert len(pages) <= 3 + 10

    def test_empty_space_falls_back_to_linear(self):
        points = bent_chain(bend_at=1e9, angle=0.0, length=40.0)
        dataset = polyline_dataset(points, pad_objects=50)
        opt, index = self.make_opt(dataset)
        start = np.array([500.0, 500.0, 500.0])  # nowhere near data
        direction = np.array([0.0, 0.0, 1.0])
        landed, heading, pages = opt._traverse_one_gap(start, direction, 10.0, page_budget=20)
        assert np.allclose(heading, direction)
        assert np.allclose(landed, start + direction * 10.0)

    def test_local_direction_sign_alignment(self):
        points = bent_chain(bend_at=1e9, angle=0.0, length=40.0)
        dataset = polyline_dataset(points, pad_objects=0)
        opt, _ = self.make_opt(dataset)
        ids = np.arange(dataset.n_objects)
        # Heading along -x: segment directions stored +x must be flipped.
        direction = opt._local_direction(ids, np.array([-1.0, 0.0, 0.0]))
        assert direction is not None
        assert direction[0] < 0

    def test_local_direction_none_when_orthogonal(self):
        points = bent_chain(bend_at=1e9, angle=0.0, length=40.0)
        dataset = polyline_dataset(points, pad_objects=0)
        opt, _ = self.make_opt(dataset)
        ids = np.arange(dataset.n_objects)
        # Heading perpendicular to every segment: no aligned objects.
        direction = opt._local_direction(ids, np.array([0.0, 0.0, 1.0]))
        assert direction is None
