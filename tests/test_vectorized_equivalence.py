"""Old-vs-vectorized equivalence: page sets, crossings, full simulations.

The vectorized hot path (packed R-tree levels, batched region probes,
array-clipped crossings, lockstep gap traversal) must be a pure
performance change: every observable -- page sets, crossing points and
directions, simulation metrics -- is required to be *bit-identical* to
the scalar reference paths kept in ``repro.index.scalar_ref`` and
``repro.graph.traversal.region_crossings_reference``.
"""

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.geometry import AABB
from repro.graph.traversal import (
    region_crossings,
    region_crossings_grouped,
    region_crossings_reference,
)
from repro.index import FlatIndex, GridIndex, STRTree, ScalarFlatIndex, ScalarSTRTree
from repro.index.scalar_ref import pages_for_region_scalar
from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.sim import run_experiment
from repro.workload.sequence import generate_sequences


def toy_dataset(points: np.ndarray) -> Dataset:
    """Point-like dataset (zero-length segments) for index tests."""
    n = len(points)
    nav = NavigationGraph(
        np.array([[0.0, 0, 0], [1.0, 0, 0]]),
        [NavEdge(0, 1, Polyline(np.array([[0.0, 0, 0], [1.0, 0, 0]])))],
    )
    return Dataset(
        name="toy",
        p0=points,
        p1=points.copy(),
        radius=np.zeros(n),
        structure_id=np.zeros(n, dtype=np.int64),
        branch_id=np.zeros(n, dtype=np.int64),
        nav=nav,
    )


def probe_boxes(dataset, rng, n):
    """Prefetch-region-sized probes anchored on the data (plus misses)."""
    probes = []
    for _ in range(n):
        anchor = dataset.centroids[rng.integers(dataset.n_objects)]
        side = rng.uniform(1.0, 60.0)
        probes.append(AABB.from_center_extent(anchor + rng.normal(scale=4.0, size=3), side))
    probes.append(dataset.bounds.inflate(1.0))
    probes.append(AABB([1e7] * 3, [1e7 + 1] * 3))
    return probes


class TestScalarTraversalEquivalence:
    def test_scalar_walk_matches_vectorized(self, tissue, tissue_rtree, rng):
        for probe in probe_boxes(tissue, rng, 50):
            assert np.array_equal(
                pages_for_region_scalar(tissue_rtree, probe),
                tissue_rtree.pages_for_region(probe),
            )

    def test_scalar_index_classes_match(self, tissue, rng):
        scalar_tree = ScalarSTRTree(tissue, fanout=16)
        tree = STRTree(tissue, fanout=16)
        for probe in probe_boxes(tissue, rng, 25):
            assert np.array_equal(
                scalar_tree.pages_for_region(probe), tree.pages_for_region(probe)
            )

    def test_scalar_flat_adjacency_identical(self, tissue, tissue_flat):
        scalar_flat = ScalarFlatIndex(tissue, fanout=16)
        assert [sorted(s) for s in scalar_flat._neighbors] == [
            sorted(s) for s in tissue_flat._neighbors
        ]


class TestCrossingEquivalence:
    def regions_and_ids(self, dataset, rng, n):
        for _ in range(n):
            anchor = dataset.centroids[rng.integers(dataset.n_objects)]
            region = AABB.from_center_extent(anchor, rng.uniform(5.0, 60.0))
            mask = np.all(
                (dataset.obj_lo <= region.hi) & (dataset.obj_hi >= region.lo), axis=1
            )
            yield region, np.flatnonzero(mask)

    @staticmethod
    def assert_same(reference, vectorized):
        assert len(reference) == len(vectorized)
        for ref, vec in zip(reference, vectorized):
            assert ref.object_id == vec.object_id
            assert np.array_equal(ref.point, vec.point)
            assert np.array_equal(ref.direction, vec.direction)

    def test_bit_identical_to_reference(self, tissue, rng):
        checked = 0
        for region, ids in self.regions_and_ids(tissue, rng, 40):
            reference = region_crossings_reference(tissue, ids, region)
            self.assert_same(reference, region_crossings(tissue, ids, region))
            checked += len(reference)
        assert checked > 50  # the probes actually exercised crossings

    def test_grouped_matches_per_group(self, tissue, rng):
        for region, ids in self.regions_and_ids(tissue, rng, 10):
            groups = [ids[::3], ids[1::3], np.empty(0, dtype=np.int64), ids[2::3]]
            grouped = region_crossings_grouped(tissue, groups, region)
            assert len(grouped) == len(groups)
            for group, crossings in zip(groups, grouped):
                self.assert_same(region_crossings_reference(tissue, group, region), crossings)

    def test_empty_inputs(self, tissue):
        region = AABB.cube(tissue.bounds.center, 1000.0)
        assert region_crossings(tissue, np.empty(0, dtype=np.int64), region) == []
        assert region_crossings_grouped(tissue, [], region) == []


class TestSimulationEquivalence:
    """Full simulations over scalar vs vectorized indexes, bit for bit."""

    @pytest.mark.parametrize("kind,gap", [("scout", 0.0), ("scout-opt", 12.0)])
    def test_metrics_bit_identical(self, tissue, kind, gap):
        vector = FlatIndex(tissue, fanout=16)
        scalar = ScalarFlatIndex(tissue, fanout=16)
        sequences = generate_sequences(
            tissue, n_sequences=2, seed=5, n_queries=6, volume=30_000.0, gap=gap
        )

        def prefetcher(index):
            if kind == "scout":
                return ScoutPrefetcher(tissue, ScoutConfig())
            return ScoutOptPrefetcher(tissue, index, ScoutConfig())

        vector_result = run_experiment(vector, sequences, prefetcher(vector))
        scalar_result = run_experiment(scalar, sequences, prefetcher(scalar))
        assert asdict(vector_result.metrics) == asdict(scalar_result.metrics)
        for vec_seq, sca_seq in zip(vector_result.sequences, scalar_result.sequences):
            assert [asdict(r) for r in vec_seq.records] == [
                asdict(r) for r in sca_seq.records
            ]

    def test_lockstep_gap_walks_match_sequential(self, tissue, tissue_flat):
        opt = ScoutOptPrefetcher(tissue, tissue_flat, ScoutConfig())
        opt._last_side = 20.0
        rng = np.random.default_rng(3)
        starts, directions = [], []
        for _ in range(5):
            starts.append(tissue.centroids[rng.integers(tissue.n_objects)].copy())
            d = rng.normal(size=3)
            directions.append(d / np.linalg.norm(d))
        starts.append(tissue.bounds.hi + 500.0)  # walk through empty space
        directions.append(np.array([0.0, 0.0, 1.0]))
        starts.append(tissue.bounds.center)  # degenerate heading
        directions.append(np.zeros(3))

        lockstep = opt._traverse_gaps(starts, directions, gap=15.0, page_budget=12)
        for start, direction, (point, heading, pages) in zip(starts, directions, lockstep):
            ref_point, ref_heading, ref_pages = opt._traverse_gaps(
                [start], [direction], 15.0, 12
            )[0]
            assert np.array_equal(point, ref_point)
            assert np.array_equal(heading, ref_heading)
            assert pages == ref_pages


class TestBatchedRegionProperty:
    """Hypothesis: batched probes equal naive per-region references."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_pages_for_regions_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(rng.integers(1, 200), 3))
        dataset = toy_dataset(points)
        regions = []
        for _ in range(rng.integers(1, 12)):
            lo = rng.uniform(-2, 10, size=3)
            regions.append(AABB(lo, lo + rng.uniform(0.0, 5, size=3)))
        for index in (
            STRTree(dataset, fanout=4),
            FlatIndex(dataset, fanout=4),
            GridIndex(dataset, fanout=4),
        ):
            batched = index.pages_for_regions(regions)
            assert len(batched) == len(regions)
            for region, pages in zip(regions, batched):
                naive = index.pages_for_region(region)
                assert pages.dtype == np.int64
                assert np.array_equal(pages, naive)
                # and the per-region result is the brute-force truth
                brute = [
                    p
                    for p in range(index.n_pages)
                    if index.page_bounds(p).intersects(region)
                ]
                assert pages.tolist() == brute

    def test_query_many_matches_query(self, tissue, tissue_flat, rng):
        regions = probe_boxes(tissue, rng, 15)
        for region, batched in zip(regions, tissue_flat.query_many(regions)):
            single = tissue_flat.query(region)
            assert np.array_equal(batched.object_ids, single.object_ids)
            assert np.array_equal(batched.page_ids, single.page_ids)


class TestRegressions:
    def test_leaf_page_for_point_zero_leaf_tree_returns_none(self):
        # A zero-leaf tree cannot be built from a Dataset (datasets are
        # non-empty), but the packed state is reachable and the lookup
        # contract says None -- the old code crashed in np.argmin.
        tree = STRTree.__new__(STRTree)
        tree._leaf_lo = np.empty((0, 3))
        tree._leaf_hi = np.empty((0, 3))
        tree._levels = []
        assert tree.leaf_page_for_point(np.zeros(3)) is None
        assert len(tree.pages_for_region(AABB([0, 0, 0], [1, 1, 1]))) == 0
        assert tree.pages_for_regions([AABB([0, 0, 0], [1, 1, 1])])[0].shape == (0,)

    def test_pages_for_region_returns_sorted_int64(self, tissue, tissue_rtree, rng):
        for probe in probe_boxes(tissue, rng, 10):
            pages = tissue_rtree.pages_for_region(probe)
            assert pages.dtype == np.int64
            assert np.all(np.diff(pages) > 0)  # strictly sorted, no dups

    def test_query_many_accepts_one_shot_iterator(self, tissue, tissue_flat, rng):
        regions = probe_boxes(tissue, rng, 5)
        results = tissue_flat.query_many(iter(regions))
        assert len(results) == len(regions)
        for region, result in zip(regions, results):
            assert np.array_equal(result.page_ids, tissue_flat.query(region).page_ids)

    def test_page_table_accepts_in_page_duplicates(self):
        from repro.storage.page import PageTable

        # The pre-change table accepted an id repeated within one page;
        # only cross-page double assignment is an error.
        table = PageTable([np.array([3, 3]), np.array([1])])
        assert table.page_of_object(3) == 0
        with pytest.raises(ValueError):
            PageTable([np.array([3]), np.array([3])])

    def test_ordered_pages_matches_scalar_heap_reference(self, tissue, tissue_flat, rng):
        import heapq

        for _ in range(5):
            anchor = tissue.centroids[rng.integers(tissue.n_objects)]
            region = AABB.from_center_extent(anchor, rng.uniform(30.0, 80.0))
            starts = np.array([region.lo, region.hi, anchor])
            ordered = tissue_flat.ordered_pages(region, starts)
            heap = []
            for page in tissue_flat.pages_for_region(region):
                box = tissue_flat.page_bounds(int(page))
                heapq.heappush(
                    heap, (min(box.distance_to_point(p) for p in starts), int(page))
                )
            reference = [heapq.heappop(heap)[1] for _ in range(len(heap))]
            assert ordered == reference
