"""Baseline prefetchers: prediction math and planning behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    LayeredPrefetcher,
    NoPrefetcher,
    ObservedQuery,
    OraclePrefetcher,
    PolynomialPrefetcher,
    StraightLinePrefetcher,
    VelocityPrefetcher,
)
from repro.geometry import AABB


def observe_path(prefetcher, centers, side=10.0):
    """Feed a list of centers to a prefetcher as cube queries."""
    prefetcher.begin_sequence()
    for i, center in enumerate(centers):
        bounds = AABB.from_center_extent(np.asarray(center, dtype=float), side)
        prefetcher.observe(ObservedQuery(i, bounds, np.empty(0, dtype=np.int64)))


def predicted_center(prefetcher):
    (target,) = prefetcher.plan()
    assert target.regions is not None
    return target.regions[0].center


class TestStraightLine:
    def test_needs_two_points(self):
        p = StraightLinePrefetcher()
        observe_path(p, [[0, 0, 0]])
        assert p.plan() == []

    def test_exact_on_linear_motion(self):
        p = StraightLinePrefetcher()
        observe_path(p, [[0, 0, 0], [3, 0, 0], [6, 0, 0]])
        assert np.allclose(predicted_center(p), [9, 0, 0])

    def test_no_plan_when_stationary(self):
        p = StraightLinePrefetcher()
        observe_path(p, [[1, 1, 1], [1, 1, 1]])
        assert p.plan() == []

    def test_begin_sequence_resets(self):
        p = StraightLinePrefetcher()
        observe_path(p, [[0, 0, 0], [3, 0, 0]])
        p.begin_sequence()
        assert p.plan() == []


class TestPolynomial:
    def test_exact_on_quadratic_motion(self):
        p = PolynomialPrefetcher(degree=2)
        centers = [[t * t, 2 * t, 0] for t in range(4)]
        observe_path(p, centers)
        assert np.allclose(predicted_center(p), [16, 8, 0], atol=1e-6)

    def test_needs_degree_plus_one(self):
        p = PolynomialPrefetcher(degree=3)
        observe_path(p, [[0, 0, 0], [1, 0, 0], [2, 0, 0]])
        assert p.plan() == []

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            PolynomialPrefetcher(degree=0)

    def test_name_includes_degree(self):
        assert PolynomialPrefetcher(3).name == "poly-3"


class TestVelocity:
    def test_averages_recent_velocity(self):
        p = VelocityPrefetcher(window=2)
        observe_path(p, [[0, 0, 0], [2, 0, 0], [6, 0, 0]])
        # velocities 2 and 4 -> mean 3; prediction 6 + 3 = 9.
        assert np.allclose(predicted_center(p), [9, 0, 0])

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            VelocityPrefetcher(window=0)


class TestEWMA:
    def test_constant_motion_exact(self):
        p = EWMAPrefetcher(lam=0.3)
        observe_path(p, [[0, 0, 0], [5, 0, 0], [10, 0, 0]])
        assert np.allclose(predicted_center(p), [15, 0, 0])

    def test_recent_movement_dominates(self):
        p = EWMAPrefetcher(lam=0.8)
        observe_path(p, [[0, 0, 0], [10, 0, 0], [10, 1, 0]])
        prediction = predicted_center(p)
        # The recent +y movement outweighs the older +x one at high lambda.
        delta = prediction - np.array([10, 1, 0])
        assert delta[1] > 0
        assert abs(delta[0]) < 10 * 0.25

    def test_weights_follow_paper_formula(self):
        lam = 0.3
        p = EWMAPrefetcher(lam=lam)
        moves = [np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), np.array([0, 0, 1.0])]
        centers = [np.zeros(3)]
        for move in moves:
            centers.append(centers[-1] + move)
        observe_path(p, centers)
        weights = np.array([lam * (1 - lam) ** j for j in range(3)])
        weights /= weights.sum()
        expected_velocity = (
            weights[0] * moves[2] + weights[1] * moves[1] + weights[2] * moves[0]
        )
        assert np.allclose(predicted_center(p) - centers[-1], expected_velocity)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            EWMAPrefetcher(lam=0.0)
        with pytest.raises(ValueError):
            EWMAPrefetcher(lam=1.5)


class TestHilbert:
    def test_plans_cells_near_current(self, tissue):
        p = HilbertPrefetcher(tissue, cells_per_axis=8, n_prefetch_cells=6)
        observe_path(p, [tissue.bounds.center])
        (target,) = p.plan()
        assert target.regions is not None
        assert 1 <= len(target.regions) <= 6
        for region in target.regions:
            assert tissue.bounds.inflate(1.0).intersects(region)

    def test_no_plan_before_observation(self, tissue):
        p = HilbertPrefetcher(tissue)
        p.begin_sequence()
        assert p.plan() == []

    def test_2d_dataset_uses_2d_curve(self, roads):
        p = HilbertPrefetcher(roads, cells_per_axis=8)
        observe_path(p, [roads.bounds.center])
        (target,) = p.plan()
        # All prefetched cells span the full z-extent (one z layer).
        for region in target.regions:
            assert region.extent[2] >= roads.bounds.extent[2] * 0.99

    def test_rejects_bad_parameters(self, tissue):
        with pytest.raises(ValueError):
            HilbertPrefetcher(tissue, cells_per_axis=1)
        with pytest.raises(ValueError):
            HilbertPrefetcher(tissue, n_prefetch_cells=0)


class TestLayered:
    def test_prefetches_surrounding_cells(self, tissue):
        p = LayeredPrefetcher(tissue, cells_per_axis=8)
        observe_path(p, [tissue.bounds.center])
        (target,) = p.plan()
        assert target.regions is not None
        assert len(target.regions) == 26  # interior cell in 3D

    def test_corner_cell_has_fewer_neighbors(self, tissue):
        p = LayeredPrefetcher(tissue, cells_per_axis=8)
        observe_path(p, [tissue.bounds.lo + 1e-6])
        (target,) = p.plan()
        assert len(target.regions) == 7

    def test_nearest_cells_first(self, tissue):
        p = LayeredPrefetcher(tissue, cells_per_axis=8)
        center = tissue.bounds.center
        observe_path(p, [center])
        (target,) = p.plan()
        distances = [np.linalg.norm(r.center - center) for r in target.regions]
        assert distances == sorted(distances)


class TestTrivial:
    def test_no_prefetcher_never_plans(self):
        p = NoPrefetcher()
        observe_path(p, [[0, 0, 0], [1, 0, 0]])
        assert p.plan() == []

    def test_oracle_prefetches_true_next(self, tissue, rng):
        from repro.workload import generate_sequence

        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        p = OraclePrefetcher(seq)
        p.begin_sequence()
        p.observe(ObservedQuery(0, seq.queries[0].bounds, np.empty(0, dtype=np.int64)))
        (target,) = p.plan()
        assert np.allclose(target.regions[0].center, seq.queries[1].bounds.center)

    def test_oracle_stops_at_sequence_end(self, tissue, rng):
        from repro.workload import generate_sequence

        seq = generate_sequence(tissue, rng, n_queries=2, volume=40_000.0)
        p = OraclePrefetcher(seq)
        p.begin_sequence()
        for i in range(2):
            p.observe(ObservedQuery(i, seq.queries[i].bounds, np.empty(0, dtype=np.int64)))
        assert p.plan() == []

    def test_oracle_requires_sequence(self):
        p = OraclePrefetcher()
        p.begin_sequence()
        p.observe(ObservedQuery(0, AABB([0, 0, 0], [1, 1, 1]), np.empty(0, dtype=np.int64)))
        with pytest.raises(RuntimeError):
            p.plan()


class TestPrefetchTarget:
    def test_direction_normalized(self):
        from repro.baselines import PrefetchTarget

        target = PrefetchTarget(anchor=np.zeros(3), direction=np.array([0, 0, 5.0]))
        assert np.allclose(target.direction, [0, 0, 1])

    def test_rejects_negative_share(self):
        from repro.baselines import PrefetchTarget

        with pytest.raises(ValueError):
            PrefetchTarget(anchor=np.zeros(3), direction=np.ones(3), share=-0.5)
