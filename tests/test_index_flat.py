"""FLAT index: adjacency symmetry, crawl completeness, ordered retrieval."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.index import FlatIndex, STRTree


class TestAdjacency:
    def test_symmetric(self, tissue_flat):
        for page in range(min(tissue_flat.n_pages, 200)):
            for neighbor in tissue_flat.neighbors(page):
                assert page in tissue_flat.neighbors(neighbor)

    def test_no_self_loops(self, tissue_flat):
        for page in range(min(tissue_flat.n_pages, 200)):
            assert page not in tissue_flat.neighbors(page)

    def test_neighbors_spatially_touch(self, tissue_flat):
        eps = tissue_flat._adjacency_epsilon * 1.01
        for page in range(min(tissue_flat.n_pages, 100)):
            box = tissue_flat.page_bounds(page).inflate(eps)
            for neighbor in tissue_flat.neighbors(page):
                assert box.intersects(tissue_flat.page_bounds(neighbor))

    def test_requires_flat_for_scout_opt(self, tissue, tissue_rtree):
        from repro.core import ScoutOptPrefetcher

        with pytest.raises(TypeError):
            ScoutOptPrefetcher(tissue, tissue_rtree)


class TestQueries:
    def test_same_results_as_rtree(self, tissue, tissue_flat, tissue_rtree):
        region = AABB.cube(tissue.bounds.center, 60_000.0)
        flat_result = tissue_flat.query(region)
        rtree_result = tissue_rtree.query(region)
        assert set(flat_result.object_ids.tolist()) == set(rtree_result.object_ids.tolist())

    def test_seed_page_contains_point(self, tissue, tissue_flat):
        point = tissue.centroids[42]
        seed = tissue_flat.seed_page(point)
        assert tissue_flat.page_bounds(seed).contains_point(point)


class TestCrawl:
    def test_crawl_visits_all_result_pages(self, tissue, tissue_flat):
        region = AABB.cube(tissue.bounds.center, 60_000.0)
        crawled = tissue_flat.crawl_pages(region)
        expected = set(tissue_flat.pages_for_region(region).tolist())
        assert expected <= set(crawled)

    def test_crawl_has_no_duplicates(self, tissue, tissue_flat):
        region = AABB.cube(tissue.bounds.center, 60_000.0)
        crawled = tissue_flat.crawl_pages(region)
        assert len(crawled) == len(set(crawled))

    def test_crawl_empty_region(self, tissue_flat):
        region = AABB([1e7] * 3, [1e7 + 1] * 3)
        assert tissue_flat.crawl_pages(region) == []


class TestOrderedRetrieval:
    def test_orders_by_distance_to_start(self, tissue, tissue_flat):
        region = AABB.cube(tissue.bounds.center, 80_000.0)
        start = region.lo.copy()
        ordered = tissue_flat.ordered_pages(region, start[None, :])
        distances = [tissue_flat.page_bounds(p).distance_to_point(start) for p in ordered]
        assert distances == sorted(distances)

    def test_returns_exactly_result_pages(self, tissue, tissue_flat):
        region = AABB.cube(tissue.bounds.center, 80_000.0)
        ordered = tissue_flat.ordered_pages(region, region.center[None, :])
        assert sorted(ordered) == sorted(tissue_flat.pages_for_region(region).tolist())

    def test_empty_region(self, tissue_flat):
        region = AABB([1e7] * 3, [1e7 + 1] * 3)
        assert tissue_flat.ordered_pages(region, np.zeros((1, 3))) == []
