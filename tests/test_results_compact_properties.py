"""Property tests for :meth:`ResultStore.compact`.

The contract, checked over arbitrary interleavings of ok / failed /
corrupt / stale store lines (hypothesis generates the interleavings):

* the loaded view is unchanged -- ``load()`` before and after compaction
  agree record for record, so compaction can never drop an ``ok`` cell
  (or a failure envelope, which a resume still owes a retry);
* compaction is idempotent -- a second pass keeps every record and
  reclaims zero bytes;
* the byte accounting is honest -- reclaimed = before - after, and the
  rewritten file holds exactly the kept records.  Reclaimed is >= 0 for
  the schema-2 lines generated here; legacy schema-1 records grow on
  rewrite (upgraded to the envelope layout), covered separately in
  ``test_fault_tolerance.py``.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.metrics import AggregateMetrics
from repro.sim.results import CellResult, ResultStore, cell_key

#: Line kinds a long-lived store accumulates.
_KINDS = ("ok", "failed", "corrupt", "stale")


def _spec(i: int) -> dict:
    """A tiny distinct-but-valid cell-spec dict (never executed).

    Odd ``i`` adds a tiered-storage mapping, so the compaction
    properties also hold over stores whose cells carry the additive
    storage keys (spec ``storage`` + tier metrics).
    """
    spec = {
        "dataset": {"kind": "neuron", "params": {"n_neurons": 4, "seed": i}},
        "index": {"kind": "flat", "params": {"fanout": 16}},
        "workload": {
            "n_sequences": 2,
            "n_queries": 5,
            "volume": 20_000.0,
            "gap": 0.0,
            "aspect": "cube",
            "window_ratio": 1.0,
        },
        "prefetcher": {"kind": "none", "params": {}},
        "seed": i,
        "sim": {},
    }
    if i % 2:
        spec["storage"] = {"miss_path": "combined", "tier_pages": 4}
    return spec


def _metrics(i: int) -> AggregateMetrics:
    tiers = (
        dict(tier_hits=3 * i, miss_path_hits=i, tier_fills=5 + i, tier_stall_seconds=0.125 * i)
        if i % 2
        else {}
    )
    return AggregateMetrics(
        n_sequences=2,
        cache_hit_rate=(i % 10) / 10.0,
        hit_rate_std=0.01 * i,
        speedup=1.0 + i,
        response_seconds=0.5,
        cold_seconds=1.5,
        graph_build_seconds=0.1,
        prediction_seconds=0.2,
        per_sequence_hit_rates=[0.25, (i % 10) / 10.0],
        **tiers,
    )


def _line(kind: str, i: int) -> str:
    spec = _spec(i)
    if kind == "ok":
        result = CellResult(key=cell_key(spec), spec=spec, metrics=_metrics(i))
        return json.dumps(result.to_record())
    if kind == "failed":
        result = CellResult(
            key=cell_key(spec), spec=spec, metrics=None, status="failed",
            attempts=2, error="injected",
        )
        return json.dumps(result.to_record())
    if kind == "corrupt":
        if i % 2:
            return "{ not json at all"
        # Intact JSON whose spec no longer matches its content hash.
        result = CellResult(key=cell_key(spec), spec=spec, metrics=_metrics(i))
        record = result.to_record()
        record["key"] = "0" * 64
        return json.dumps(record)
    # Stale: a record written by some other code revision.
    result = CellResult(key=cell_key(spec), spec=spec, metrics=_metrics(i))
    record = result.to_record()
    record["schema"] = 999
    return json.dumps(record)


lines_strategy = st.lists(
    st.tuples(st.sampled_from(_KINDS), st.integers(min_value=0, max_value=4)),
    max_size=25,
)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(lines=lines_strategy)
def test_compact_preserves_the_loaded_view(tmp_path, lines):
    path = tmp_path / "store.jsonl"
    path.write_text("".join(_line(kind, i) + "\n" for kind, i in lines))

    before_store = ResultStore(path)
    before = {key: result.to_record() for key, result in before_store.load().items()}
    ok_before = {key for key, record in before.items() if record["status"] == "ok"}

    report = before_store.compact()
    after_store = ResultStore(path)
    after = {key: result.to_record() for key, result in after_store.load().items()}

    assert after == before
    assert ok_before <= set(after)  # no ok record is ever dropped
    assert report.n_kept == len(before)
    assert after_store.n_corrupt == 0 and after_store.n_stale == 0


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(lines=lines_strategy)
def test_compact_is_idempotent(tmp_path, lines):
    path = tmp_path / "store.jsonl"
    path.write_text("".join(_line(kind, i) + "\n" for kind, i in lines))

    ResultStore(path).compact()
    once = path.read_bytes()
    second = ResultStore(path).compact()
    assert path.read_bytes() == once
    assert second.reclaimed_bytes == 0
    assert second.n_corrupt == second.n_stale == second.n_superseded == 0


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(lines=lines_strategy)
def test_compact_byte_accounting_is_honest(tmp_path, lines):
    path = tmp_path / "store.jsonl"
    path.write_text("".join(_line(kind, i) + "\n" for kind, i in lines))
    bytes_before = path.stat().st_size

    store = ResultStore(path)
    report = store.compact()

    assert report.bytes_before == bytes_before
    assert report.bytes_after == path.stat().st_size
    assert report.reclaimed_bytes == bytes_before - report.bytes_after >= 0
    assert report.n_kept + report.n_dropped == len(lines)
    kept_lines = [line for line in path.read_text().splitlines() if line]
    assert len(kept_lines) == report.n_kept
