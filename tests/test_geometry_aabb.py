"""Unit and property tests for AABB algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import AABB, aabbs_intersect_arrays, union_all

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    a = np.array([draw(coords) for _ in range(3)])
    b = np.array([draw(coords) for _ in range(3)])
    return AABB(np.minimum(a, b), np.maximum(a, b))


class TestConstruction:
    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError):
            AABB([1.0, 0.0, 0.0], [0.0, 1.0, 1.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            AABB([0.0, 0.0], [1.0, 1.0])

    def test_cube_volume(self):
        box = AABB.cube([0.0, 0.0, 0.0], 27.0)
        assert box.volume == pytest.approx(27.0)
        assert np.allclose(box.extent, 3.0)

    def test_cube_rejects_nonpositive_volume(self):
        with pytest.raises(ValueError):
            AABB.cube([0.0, 0.0, 0.0], 0.0)

    def test_from_center_extent_scalar(self):
        box = AABB.from_center_extent([1.0, 2.0, 3.0], 4.0)
        assert np.allclose(box.center, [1.0, 2.0, 3.0])
        assert np.allclose(box.extent, 4.0)

    def test_from_points(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 5, 2]], dtype=float)
        box = AABB.from_points(pts)
        assert np.allclose(box.lo, [-1, 0, 0])
        assert np.allclose(box.hi, [1, 5, 3])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            AABB.from_points(np.empty((0, 3)))

    def test_corners_are_immutable(self):
        box = AABB.cube([0.0, 0.0, 0.0], 1.0)
        with pytest.raises(ValueError):
            box.lo[0] = 5.0


class TestPredicates:
    def test_contains_point_boundary(self):
        box = AABB([0, 0, 0], [1, 1, 1])
        assert box.contains_point([0, 0, 0])
        assert box.contains_point([1, 1, 1])
        assert not box.contains_point([1.0001, 0.5, 0.5])

    def test_contains_points_vectorized(self):
        box = AABB([0, 0, 0], [1, 1, 1])
        pts = np.array([[0.5, 0.5, 0.5], [2, 0, 0], [1, 1, 1]], dtype=float)
        assert list(box.contains_points(pts)) == [True, False, True]

    def test_intersects_touching_faces(self):
        a = AABB([0, 0, 0], [1, 1, 1])
        b = AABB([1, 0, 0], [2, 1, 1])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = AABB([0, 0, 0], [1, 1, 1])
        b = AABB([1.1, 0, 0], [2, 1, 1])
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_contains_box(self):
        outer = AABB([0, 0, 0], [10, 10, 10])
        inner = AABB([1, 1, 1], [2, 2, 2])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)


class TestCombinators:
    def test_intersection_volume(self):
        a = AABB([0, 0, 0], [2, 2, 2])
        b = AABB([1, 1, 1], [3, 3, 3])
        overlap = a.intersection(b)
        assert overlap is not None
        assert overlap.volume == pytest.approx(1.0)

    def test_inflate_grows_every_side(self):
        box = AABB([0, 0, 0], [1, 1, 1]).inflate(0.5)
        assert np.allclose(box.lo, -0.5)
        assert np.allclose(box.hi, 1.5)

    def test_inflate_negative_collapses_to_center(self):
        box = AABB([0, 0, 0], [1, 1, 1]).inflate(-10.0)
        assert np.allclose(box.lo, box.hi)
        assert np.allclose(box.lo, 0.5)

    def test_translate(self):
        box = AABB([0, 0, 0], [1, 1, 1]).translate([1, 2, 3])
        assert np.allclose(box.lo, [1, 2, 3])

    def test_distance_to_point(self):
        box = AABB([0, 0, 0], [1, 1, 1])
        assert box.distance_to_point([0.5, 0.5, 0.5]) == 0.0
        assert box.distance_to_point([2.0, 0.5, 0.5]) == pytest.approx(1.0)

    def test_boundary_distance_interior(self):
        box = AABB([0, 0, 0], [2, 2, 2])
        assert box.boundary_distance([1.0, 1.0, 0.1]) == pytest.approx(0.1)

    def test_boundary_distance_exterior_is_positive(self):
        box = AABB([0, 0, 0], [1, 1, 1])
        assert box.boundary_distance([3.0, 0.5, 0.5]) == pytest.approx(2.0)

    def test_corners_count_and_membership(self):
        box = AABB([0, 0, 0], [1, 2, 3])
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert all(box.contains_point(c) for c in corners)

    def test_union_all(self):
        boxes = [AABB([0, 0, 0], [1, 1, 1]), AABB([2, -1, 0], [3, 0, 5])]
        union = union_all(boxes)
        assert np.allclose(union.lo, [0, -1, 0])
        assert np.allclose(union.hi, [3, 1, 5])

    def test_union_all_rejects_empty(self):
        with pytest.raises(ValueError):
            union_all([])


class TestVectorizedIntersection:
    def test_matches_scalar(self, rng):
        box = AABB([0, 0, 0], [1, 1, 1])
        lo = rng.uniform(-2, 2, size=(50, 3))
        hi = lo + rng.uniform(0, 1, size=(50, 3))
        mask = aabbs_intersect_arrays(lo, hi, box)
        for i in range(50):
            assert mask[i] == AABB(lo[i], hi[i]).intersects(box)


class TestProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(boxes(), boxes())
    def test_intersection_commutative(self, a, b):
        ab = a.intersection(b)
        ba = b.intersection(a)
        if ab is None:
            assert ba is None
        else:
            assert np.allclose(ab.lo, ba.lo) and np.allclose(ab.hi, ba.hi)

    @given(boxes(), boxes())
    def test_intersection_inside_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_box(overlap)
            assert b.contains_box(overlap)

    @given(boxes())
    def test_volume_non_negative(self, box):
        assert box.volume >= 0.0

    @given(boxes())
    def test_clamp_point_inside(self, box):
        point = np.array([1e7, -1e7, 0.0])
        clamped = box.clamp_point(point)
        assert box.contains_point(clamped)
