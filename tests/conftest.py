"""Shared fixtures: small, session-scoped datasets and indexes.

Dataset generation and index bulk-loading dominate test runtime, so the
suite shares one small instance of each dataset across all test modules.
Tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (
    make_arterial_tree,
    make_lung_airways,
    make_neuron_tissue,
    make_road_network,
)
from repro.index import FlatIndex, GridIndex, STRTree


@pytest.fixture(scope="session")
def tissue():
    """A small neuron tissue (enough structure for guided sequences)."""
    return make_neuron_tissue(n_neurons=12, seed=11)


@pytest.fixture(scope="session")
def arterial():
    return make_arterial_tree(seed=5)


@pytest.fixture(scope="session")
def lung():
    from repro.datagen.branching import BranchingConfig
    from repro.datagen.lung import LUNG_CONFIG

    small = BranchingConfig(
        n_stems=1,
        max_depth=3,
        steps_per_branch=LUNG_CONFIG.steps_per_branch,
        step_length=LUNG_CONFIG.step_length,
        direction_jitter=LUNG_CONFIG.direction_jitter,
        bifurcation_angle=LUNG_CONFIG.bifurcation_angle,
        radius_root=LUNG_CONFIG.radius_root,
        radius_decay=LUNG_CONFIG.radius_decay,
    )
    return make_lung_airways(seed=5, config=small)


@pytest.fixture(scope="session")
def roads():
    return make_road_network(grid_size=8, seed=5)


@pytest.fixture(scope="session")
def tissue_rtree(tissue):
    return STRTree(tissue, fanout=16)


@pytest.fixture(scope="session")
def tissue_flat(tissue):
    return FlatIndex(tissue, fanout=16)


@pytest.fixture(scope="session")
def tissue_grid_index(tissue):
    return GridIndex(tissue, fanout=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
